"""The persistent job queue: submission, leases, sharding, status.

Design rule, worth repeating: **nothing here is load-bearing for
correctness**.  A point is *done* exactly when the shared
:class:`~repro.harness.cache.ResultCache` holds its fingerprint — an
atomically published, content-addressed artifact.  Leases are a
best-effort mutual-exclusion layer that keeps workers from duplicating
work; if two workers ever do run the same point (a stolen lease racing
its not-quite-dead owner), both compute byte-identical results and the
second rename is a no-op in effect.  This is what makes SIGKILL-anywhere
recovery trivial: restart, observe the cache, recompute the remainder.

The lease protocol (one JSON file per claimed point):

* **claim** — ``open(path, "x")``: atomic on POSIX and NFSv3+, exactly
  one creator wins.
* **liveness** — a lease carries ``deadline`` (wall clock + TTL) and the
  owner's ``host``/``pid``.  It is *dead* when the deadline passed, or
  when the owner is a local process that no longer exists (instant
  recovery from SIGKILLed workers without waiting out the TTL).
* **steal** — replace a dead lease via atomic rename, then read back:
  the claimant whose token survived owns the point.  Two stealers can
  transiently both believe they won; see the design rule above.
* **release** — unlink.  Workers release after publishing to the cache
  (or after recording a failure), so a lease never outlives its point.

Sharding is static and needs no coordination: worker ``i/N`` only ever
touches points with ``index % N == i``.  Shards of different ``N`` still
compose safely — overlap is handled by leases, and in the worst case by
idempotent re-execution.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..harness.cache import ResultCache, spec_fingerprint
from ..harness.parallel import GridPoint
from .clock import wall_now
from .jobstore import (
    CampaignMeta,
    CampaignStore,
    JobRecord,
    ServeError,
    read_json,
    write_json_atomic,
)

#: Default lease lifetime.  Sized for the slowest full-matrix points; a
#: worker that outlives it only risks duplicated (never wrong) work.
DEFAULT_LEASE_TTL_S = 300.0

#: Process-local claim sequence — makes every lease token unique even when
#: one process claims many points in one wall-clock tick.
_claim_sequence = itertools.count()


@dataclass(frozen=True)
class Lease:
    """One work claim, as stored in ``leases/<index>.json``."""

    token: str
    host: str
    pid: int
    worker: str
    deadline: float

    def to_payload(self) -> Dict[str, object]:
        return {
            "token": self.token,
            "host": self.host,
            "pid": self.pid,
            "worker": self.worker,
            "deadline": self.deadline,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Lease":
        return cls(
            token=str(payload["token"]),
            host=str(payload["host"]),
            pid=int(payload["pid"]),
            worker=str(payload.get("worker", "?")),
            deadline=float(payload["deadline"]),
        )


@dataclass
class CampaignStatus:
    """One campaign's progress, derived from cache + markers on demand."""

    campaign_id: str
    title: str
    total: int
    done: int
    failed: int
    leased: int
    cancelled: bool

    @property
    def pending(self) -> int:
        return self.total - self.done - self.failed

    @property
    def complete(self) -> bool:
        return self.done == self.total

    @property
    def settled(self) -> bool:
        """Nothing left to run: every point is done, failed, or abandoned."""
        return self.cancelled or self.done + self.failed == self.total


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OverflowError, ValueError):
        # Exists-but-not-ours, or a pid we cannot even express: assume alive
        # and let the TTL arbitrate.
        return True
    return True


def campaign_id_for(fingerprints: Sequence[str], title: str) -> str:
    """Deterministic campaign id: content hash of the ordered point list.

    Resubmitting an identical campaign therefore lands on the existing one
    (idempotent submit) instead of queueing duplicate work.
    """
    digest = hashlib.sha256()
    digest.update(title.encode("utf-8"))
    for fingerprint in fingerprints:
        digest.update(b"\n")
        digest.update(fingerprint.encode("ascii"))
    return f"{_slug(title)}-{digest.hexdigest()[:12]}"


def _slug(title: str) -> str:
    cleaned = [c if c.isalnum() else "-" for c in title.lower()]
    slug = "".join(cleaned).strip("-")[:32] or "campaign"
    return slug


class JobQueue:
    """Queue semantics over one spool directory (see module docstring)."""

    def __init__(
        self,
        spool: Union[str, Path],
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock=None,
    ) -> None:
        self.store = CampaignStore(spool)
        self.lease_ttl_s = lease_ttl_s
        self.cache = ResultCache(self.store.cache_dir)
        self._host = socket.gethostname()
        # Every wall-clock read the queue makes goes through this one
        # callable, so tests can freeze time and pin the lease-reclaim
        # boundary (a lease whose deadline == now is dead) exactly.
        self._clock = wall_now if clock is None else clock

    # -- submission --------------------------------------------------------

    def submit(
        self,
        points: Sequence[GridPoint],
        title: str,
        campaign_id: Optional[str] = None,
        figure: Optional[str] = None,
        quick: bool = True,
        scale: float = 0.0,
        seed: int = 0,
    ) -> CampaignMeta:
        """Durably enqueue a campaign of grid points; idempotent by content.

        Returns the (possibly pre-existing) campaign's metadata.  The
        fingerprint stored per record is computed *here*, with this
        process's :data:`~repro.harness.cache.CACHE_VERSION` — workers
        recompute and cross-check it, so submitter/worker version skew
        fails loudly instead of publishing mislabelled artifacts.
        """
        if not points:
            raise ServeError("a campaign needs at least one point")
        records = []
        for index, point in enumerate(points):
            records.append(
                JobRecord(
                    index=index,
                    fingerprint=spec_fingerprint(point.spec, label=point.label),
                    label=point.label,
                    spec=point.spec,
                    key=point.key,
                )
            )
        if campaign_id is None:
            campaign_id = campaign_id_for(
                [r.fingerprint for r in records], title
            )
        if self.store.exists(campaign_id):
            return self.store.load_meta(campaign_id)
        meta = CampaignMeta(
            campaign_id=campaign_id,
            title=title,
            total_points=len(records),
            created=self._clock(),
            figure=figure,
            quick=quick,
            scale=scale,
            seed=seed,
        )
        self.store.publish(meta, records)
        return meta

    # -- introspection -----------------------------------------------------

    def campaigns(self) -> List[CampaignMeta]:
        return [self.store.load_meta(cid) for cid in self.store.list_ids()]

    def records(self, campaign_id: str) -> List[JobRecord]:
        return self.store.load_records(campaign_id)

    def status(self, campaign_id: str) -> CampaignStatus:
        meta = self.store.load_meta(campaign_id)
        done = failed = leased = 0
        now = self._clock()
        for record in self.store.load_records(campaign_id):
            if self.cache.has_fingerprint(record.fingerprint):
                done += 1
            elif self.failure(campaign_id, record.index) is not None:
                failed += 1
            else:
                lease = self.peek_lease(campaign_id, record.index)
                if lease is not None and not self._lease_dead(lease, now):
                    leased += 1
        return CampaignStatus(
            campaign_id=campaign_id,
            title=meta.title,
            total=meta.total_points,
            done=done,
            failed=failed,
            leased=leased,
            cancelled=self.cancelled(campaign_id),
        )

    def done_fingerprints(self, campaign_id: str) -> int:
        """How many of this campaign's points the shared cache holds."""
        return sum(
            1
            for record in self.store.load_records(campaign_id)
            if self.cache.has_fingerprint(record.fingerprint)
        )

    # -- cancellation ------------------------------------------------------

    def cancel(self, campaign_id: str) -> None:
        if not self.store.exists(campaign_id):
            raise ServeError(f"no campaign {campaign_id!r} to cancel")
        write_json_atomic(
            self.store.cancel_path(campaign_id), {"cancelled": self._clock()}
        )

    def cancelled(self, campaign_id: str) -> bool:
        return self.store.cancel_path(campaign_id).is_file()

    # -- failures ----------------------------------------------------------

    def record_failure(
        self, campaign_id: str, index: int, message: str
    ) -> None:
        """Mark a point failed (workers skip it until the marker is removed)."""
        write_json_atomic(
            self.store.failure_path(campaign_id, index),
            {"index": index, "message": message, "recorded": self._clock()},
        )

    def failure(self, campaign_id: str, index: int) -> Optional[str]:
        payload = read_json(self.store.failure_path(campaign_id, index))
        if payload is None:
            return None
        return str(payload.get("message", "unknown failure"))

    def failures(self, campaign_id: str) -> Dict[int, str]:
        out: Dict[int, str] = {}
        for record in self.store.load_records(campaign_id):
            message = self.failure(campaign_id, record.index)
            if message is not None:
                out[record.index] = message
        return out

    def clear_failures(self, campaign_id: str) -> int:
        """Remove every failure marker (``repro serve retry``); returns count."""
        cleared = 0
        for record in self.store.load_records(campaign_id):
            path = self.store.failure_path(campaign_id, record.index)
            try:
                path.unlink()
                cleared += 1
            except FileNotFoundError:
                pass
        return cleared

    # -- leases ------------------------------------------------------------

    def peek_lease(self, campaign_id: str, index: int) -> Optional[Lease]:
        payload = read_json(self.store.lease_path(campaign_id, index))
        if payload is None:
            return None
        try:
            return Lease.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None  # torn lease: claimable

    def _lease_dead(self, lease: Lease, now: float) -> bool:
        if lease.deadline <= now:
            return True
        if lease.host == self._host and not _pid_alive(lease.pid):
            return True
        return False

    def _make_lease(self, worker: str) -> Lease:
        pid = os.getpid()
        return Lease(
            token=f"{self._host}:{pid}:{next(_claim_sequence)}",
            host=self._host,
            pid=pid,
            worker=worker,
            deadline=self._clock() + self.lease_ttl_s,
        )

    def try_claim(
        self, campaign_id: str, index: int, worker: str
    ) -> Optional[Lease]:
        """Claim one point; ``None`` means someone live already holds it."""
        path = self.store.lease_path(campaign_id, index)
        path.parent.mkdir(parents=True, exist_ok=True)
        lease = self._make_lease(worker)
        try:
            with path.open("x", encoding="utf-8") as handle:
                handle.write(json.dumps(lease.to_payload(), sort_keys=True))
            return lease
        except FileExistsError:
            pass
        existing = self.peek_lease(campaign_id, index)
        if existing is not None and not self._lease_dead(existing, self._clock()):
            return None
        # Dead (or torn) lease: steal by atomic replacement, then read back
        # to see whose token actually landed.
        write_json_atomic(path, lease.to_payload())
        current = self.peek_lease(campaign_id, index)
        if current is not None and current.token == lease.token:
            return lease
        return None

    def release(self, campaign_id: str, index: int) -> None:
        try:
            self.store.lease_path(campaign_id, index).unlink()
        except FileNotFoundError:
            pass

    # -- work discovery ----------------------------------------------------

    def shard_records(
        self, campaign_id: str, shard: Tuple[int, int] = (0, 1)
    ) -> List[JobRecord]:
        """This shard's slice of a campaign, in submission order."""
        shard_index, shard_count = _check_shard(shard)
        return [
            record
            for record in self.store.load_records(campaign_id)
            if record.index % shard_count == shard_index
        ]

    def runnable(
        self, campaign_id: str, shard: Tuple[int, int] = (0, 1)
    ) -> Iterable[JobRecord]:
        """Points this shard could still run: not done, not failed.

        (Lease state is *not* consulted here — claiming is the worker's
        per-point step, so discovery stays one cheap pass.)
        """
        if self.cancelled(campaign_id):
            return
        for record in self.shard_records(campaign_id, shard):
            if self.cache.has_fingerprint(record.fingerprint):
                continue
            if self.failure(campaign_id, record.index) is not None:
                continue
            yield record


def _check_shard(shard: Tuple[int, int]) -> Tuple[int, int]:
    shard_index, shard_count = shard
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        raise ServeError(f"invalid shard {shard_index}/{shard_count}")
    return shard_index, shard_count


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``"i/N"`` (e.g. ``0/4``) into a validated ``(i, N)`` pair."""
    try:
        left, right = text.split("/", 1)
        shard = (int(left), int(right))
    except ValueError as exc:
        raise ServeError(
            f"shard must look like 'i/N' (got {text!r})"
        ) from exc
    return _check_shard(shard)
