"""Tables I, II, and IV: rendered from the implementation itself.

Table I's row for UHTM and Table II's policy matrix are probed from the
live code (policy drift fails the assertion inside the renderer); Table IV
enumerates the workload registry.
"""

from __future__ import annotations

from repro.harness.figures import table1, table2, table4
from repro.params import MachineConfig


def test_table1(benchmark, show):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    show(result)
    rows = result.row_map()
    assert rows["UHTM"][1] == "unbounded"
    assert rows["UHTM"][2] == "unbounded"
    assert rows["DHTM"][2] == "LLC"


def test_table2(benchmark, show):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    show(result)
    actions = {(row[0], row[1]): row[2] for row in result.rows}
    assert actions[("on_chip", "One")] == "Abort non-overflowed Tx"
    assert actions[("on_chip", "None or both")] == "Requester-Wins"
    assert actions[("off_chip", "One")] == "Abort non-overflowed Tx"
    assert actions[("off_chip", "None or both")] == "Requester-Aborts"


def test_table3_machine_defaults(benchmark, show):
    """Table III is the default MachineConfig; assert the headline rows."""

    def render():
        machine = MachineConfig()
        from repro.harness.report import FigureResult

        result = FigureResult(
            "Table III", "Simulation configuration", ["parameter", "value"]
        )
        result.add_row("processor", f"{machine.cores}-core, "
                                    f"{machine.clock_ghz:g} GHz, in-order")
        result.add_row("L1 I/D cache",
                       f"private {machine.l1.size_bytes // 1024} KB, "
                       f"{machine.l1.ways}-way")
        result.add_row("L1 latency", f"{machine.latency.l1_ns} ns")
        result.add_row("L2 cache",
                       f"shared {machine.llc.size_bytes // (1 << 20)} MB, "
                       f"{machine.llc.ways}-way")
        result.add_row("L2 latency", f"{machine.latency.llc_ns} ns")
        result.add_row("DRAM latency",
                       f"read/write = {machine.latency.dram_ns} ns")
        result.add_row("NVM latency",
                       f"read = {machine.latency.nvm_read_ns} ns, "
                       f"write = {machine.latency.nvm_write_ns} ns")
        return result

    result = benchmark.pedantic(render, rounds=1, iterations=1)
    show(result)
    values = dict(result.rows)
    assert values["processor"].startswith("16-core")
    assert "32 KB" in values["L1 I/D cache"]
    assert "16 MB" in values["L2 cache"]


def test_table4(benchmark, show):
    result = benchmark.pedantic(table4, rounds=1, iterations=1)
    show(result)
    names = {row[0] for row in result.rows}
    assert {
        "hashmap", "btree", "rbtree", "skiplist",
        "hybrid_index", "dual_kv", "echo",
    } <= names
