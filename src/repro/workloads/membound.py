"""A memory-intensive co-runner that hogs the shared LLC.

Stands in for the graph500-class applications the paper co-schedules to
"emulate contention in LLC" (Section VI-A): a non-transactional thread
streaming reads and writes over an array larger than the LLC, continuously
evicting the benchmarks' transactional lines — which is what pushes them
past the on-chip boundary and into overflow handling.

The co-runner has no natural end, so it runs until ``stop_when()`` becomes
true (the harness passes "all benchmark threads finished").
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..mem.address import MemoryKind
from ..params import LINE_SIZE
from .base import Workload, WorkloadParams

#: Lines touched between scheduling yields.
_SWEEP_CHUNK = 32


class MemBoundWorkload(Workload):
    """A streaming scan sized at ``llc_multiple`` times the LLC."""

    name = "membound"

    def __init__(
        self,
        system,
        process,
        params: WorkloadParams,
        llc_multiple: float = 2.0,
        stop_when: Optional[Callable[[], bool]] = None,
        max_sweeps: int = 10_000,
    ) -> None:
        super().__init__(system, process, params)
        self.array_lines = max(
            _SWEEP_CHUNK,
            int(system.machine.llc.num_lines * llc_multiple),
        )
        self.stop_when = stop_when or (lambda: False)
        self.max_sweeps = max_sweeps
        self.base: Optional[int] = None
        self.sweeps_completed = 0

    def setup(self) -> None:
        self.base = self.system.heap.alloc(
            self.array_lines * LINE_SIZE, MemoryKind.DRAM
        )

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    def _make_body(self, thread_index: int) -> Callable:
        stride = self.array_lines // self.params.threads
        start = thread_index * stride

        def body(api) -> Generator[None, None, None]:
            # One chunk of addresses per scheduling yield; the addresses are
            # a pure function of the sweep geometry, so they are computed
            # once up front and each chunk issues as a single read-modify-
            # write block (an epoch under the batched engine, a plain loop
            # of read_word/write_word pairs otherwise).
            base = self.base
            array_lines = self.array_lines
            chunks = []
            for chunk_start in range(0, stride, _SWEEP_CHUNK):
                chunks.append(
                    [
                        base + ((start + i) % array_lines) * LINE_SIZE
                        for i in range(
                            chunk_start, min(chunk_start + _SWEEP_CHUNK, stride)
                        )
                    ]
                )
            stop_when = self.stop_when
            for _ in range(self.max_sweeps):
                if stop_when():
                    return
                for chunk in chunks:
                    # api.nontx is looked up per chunk: migration swaps in a
                    # new DirectContext bound to the destination core.
                    api.nontx.rmw_add_block(chunk, 1)
                    yield
                    if stop_when():
                        return
                self.sweeps_completed += 1

        return body
