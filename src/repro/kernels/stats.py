"""Vectorized histogram bucketing.

:class:`VectorHistogram` subclasses :class:`repro.sim.stats.Histogram` and
replaces only the deferred ``_flush``: the per-sample bit-length bucketing
runs as whole-array numpy (``frexp`` exponents of the truncated samples,
clamped and folded with ``bincount``).  The running sum deliberately stays a
Python left-fold over the pending list — ``np.sum`` uses pairwise summation,
which rounds differently, and the equivalence contract is bit-identity with
the scalar class, not "close".
"""

from __future__ import annotations

from ..sim.stats import Histogram
from ._np import require_numpy


class VectorHistogram(Histogram):
    """Histogram whose batch flush buckets samples with numpy."""

    __slots__ = ()

    def __init__(self, buckets: int = 40) -> None:
        require_numpy()
        super().__init__(buckets)

    def _flush(self) -> None:
        pending = self._pending
        if not pending:
            return
        np = require_numpy()
        counts = self._counts
        top = len(counts) - 1
        arr = np.asarray(pending, dtype=np.float64)
        # Scalar bucketing is `0 if v < 1 else min(top, int(v).bit_length()-1)`.
        # For v >= 1, bit_length(int(v)) - 1 is the exponent of the leading
        # bit of trunc(v), which frexp reports as (exponent - 1).
        _, exponents = np.frexp(np.trunc(arr))
        indices = np.where(arr < 1, 0, np.minimum(exponents - 1, top))
        bucketed = np.bincount(indices, minlength=len(counts))
        for index in np.nonzero(bucketed)[0]:
            counts[index] += int(bucketed[index])
        self._total += len(pending)
        # Left-fold, exactly like the scalar flush accumulates total_sum.
        total_sum = 0.0
        for value in pending:
            total_sum += value
        self._sum += total_sum
        maximum = float(arr.max())
        if maximum > self._max:
            self._max = maximum
        pending.clear()
