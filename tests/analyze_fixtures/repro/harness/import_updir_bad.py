"""BAD fixture: the two-dot form of the same name DOES climb the tree.

``from ..cache.hierarchy import ...`` inside ``harness/`` reaches the
top-level ``cache`` package, which the DAG does not allow harness to see.
"""

from ..cache.hierarchy import CacheHierarchy


def peek(machine):
    return CacheHierarchy(machine)
