"""Tests for the JSON/Markdown export module."""

from __future__ import annotations

import json

from repro.harness.export import (
    figure_from_dict,
    figure_to_dict,
    from_json,
    render_bars,
    to_json,
    to_markdown,
)
from repro.harness.report import FigureResult


def sample():
    result = FigureResult("Fig. X", "demo", ["name", "value"])
    result.add_row("alpha", 1.25)
    result.add_row("beta", 2.0)
    result.note("caveat")
    return result


class TestJsonRoundTrip:
    def test_to_dict(self):
        payload = figure_to_dict(sample())
        assert payload["figure"] == "Fig. X"
        assert payload["rows"] == [["alpha", 1.25], ["beta", 2.0]]
        assert payload["notes"] == ["caveat"]

    def test_round_trip(self):
        text = to_json([sample(), sample()])
        restored = from_json(text)
        assert len(restored) == 2
        assert restored[0].columns == ["name", "value"]
        assert restored[0].rows == [["alpha", 1.25], ["beta", 2.0]]
        assert restored[0].notes == ["caveat"]

    def test_json_is_valid(self):
        parsed = json.loads(to_json([sample()]))
        assert isinstance(parsed, list)

    def test_from_dict_without_notes(self):
        payload = figure_to_dict(sample())
        del payload["notes"]
        restored = figure_from_dict(payload)
        assert restored.notes == []


class TestMarkdown:
    def test_structure(self):
        text = to_markdown([sample()])
        assert "### Fig. X — demo" in text
        assert "| name | value |" in text
        assert "| alpha | 1.250 |" in text
        assert "> caveat" in text

    def test_multiple_figures(self):
        text = to_markdown([sample(), sample()])
        assert text.count("### Fig. X") == 2


class TestBars:
    def test_render(self):
        text = render_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].count("#") == 10  # the max value fills the width
        assert lines[0].count("#") == 5

    def test_empty(self):
        assert render_bars([], []) == ""

    def test_zero_values(self):
        text = render_bars(["z"], [0.0])
        assert "#" in text  # minimum one tick
