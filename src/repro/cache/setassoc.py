"""A generic set-associative tag array with LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..params import CacheGeometry, LINE_SIZE
from .coherence import MesiState


@dataclass
class CacheLineMeta:
    """Metadata for one resident line."""

    line_addr: int
    dirty: bool = False
    #: MESI state of this copy (meaningful for L1 copies; LLC copies of
    #: lines with L1 holders defer to the L1 states).
    mesi: MesiState = MesiState.SHARED
    #: Transaction that speculatively wrote this line (None if none).
    tx_writer: Optional[int] = None
    #: Transactions that transactionally read this line while resident.
    tx_readers: Set[int] = field(default_factory=set)

    @property
    def transactional(self) -> bool:
        return self.tx_writer is not None or bool(self.tx_readers)

    def clear_tx(self, tx_id: int) -> None:
        if self.tx_writer == tx_id:
            self.tx_writer = None
        self.tx_readers.discard(tx_id)


class SetAssociativeArray:
    """Tag storage for one cache level (or one core's slice of it)."""

    def __init__(self, geometry: CacheGeometry, name: str) -> None:
        self.geometry = geometry
        self.name = name
        self._sets: List["OrderedDict[int, CacheLineMeta]"] = [
            OrderedDict() for _ in range(geometry.num_sets)
        ]
        self._set_mask = geometry.num_sets
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_of(self, line_addr: int) -> "OrderedDict[int, CacheLineMeta]":
        index = (line_addr // LINE_SIZE) % self._set_mask
        return self._sets[index]

    def lookup(self, line_addr: int, touch: bool = True) -> Optional[CacheLineMeta]:
        """Probe for a line; refresh its LRU position on a hit."""
        bucket = self._set_of(line_addr)
        meta = bucket.get(line_addr)
        if meta is None:
            self.misses += 1
            return None
        if touch:
            bucket.move_to_end(line_addr)
        self.hits += 1
        return meta

    def peek(self, line_addr: int) -> Optional[CacheLineMeta]:
        """Probe without touching LRU state or hit/miss counters."""
        return self._set_of(line_addr).get(line_addr)

    def install(self, line_addr: int) -> List[CacheLineMeta]:
        """Insert a line (must not be resident); returns evicted victims."""
        bucket = self._set_of(line_addr)
        assert line_addr not in bucket, f"{self.name}: double install {line_addr:#x}"
        evicted: List[CacheLineMeta] = []
        while len(bucket) >= self.geometry.ways:
            _, victim = bucket.popitem(last=False)  # LRU end
            evicted.append(victim)
            self.evictions += 1
        bucket[line_addr] = CacheLineMeta(line_addr)
        return evicted

    def remove(self, line_addr: int) -> Optional[CacheLineMeta]:
        """Invalidate a line, returning its metadata if present."""
        return self._set_of(line_addr).pop(line_addr, None)

    def resident_count(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def resident_lines(self) -> List[int]:
        lines: List[int] = []
        for bucket in self._sets:
            lines.extend(bucket.keys())
        return lines

    def clear(self) -> None:
        for bucket in self._sets:
            bucket.clear()

    def occupancy_by_predicate(self, predicate) -> int:
        return sum(
            1
            for bucket in self._sets
            for meta in bucket.values()
            if predicate(meta)
        )
