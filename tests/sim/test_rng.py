"""Tests for deterministic RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngStreams, _stable_hash


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngStreams(42).stream("keys")
        b = RngStreams(42).stream("keys")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("keys")
        b = RngStreams(2).stream("keys")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        streams = RngStreams(42)
        keys = streams.stream("keys")
        reference = [keys.random() for _ in range(5)]

        fresh = RngStreams(42)
        # Drawing from another stream first must not perturb "keys".
        other = fresh.stream("backoff")
        other.random()
        keys2 = fresh.stream("keys")
        assert [keys2.random() for _ in range(5)] == reference

    def test_stream_is_cached(self):
        streams = RngStreams(7)
        assert streams.stream("a") is streams.stream("a")

    def test_fork_independence(self):
        base = RngStreams(42)
        fork_a = base.fork(1).stream("s")
        fork_b = base.fork(2).stream("s")
        assert [fork_a.random() for _ in range(5)] != [
            fork_b.random() for _ in range(5)
        ]

    def test_fork_deterministic(self):
        a = RngStreams(42).fork(3).stream("s").random()
        b = RngStreams(42).fork(3).stream("s").random()
        assert a == b


class TestStableHash:
    def test_stable_across_calls(self):
        assert _stable_hash("alpha") == _stable_hash("alpha")

    def test_distinct_names_distinct_hashes(self):
        names = ["a", "b", "ab", "ba", "keys", "backoff", ""]
        hashes = {_stable_hash(name) for name in names}
        assert len(hashes) == len(names)

    def test_fits_64_bits(self):
        assert 0 <= _stable_hash("anything") < 2**64
