"""End-to-end service tests across real OS processes.

These are the acceptance tests of the job service's two headline claims:

* a fig2 smoke campaign drained by **two sharded worker processes**
  produces byte-identical results to a serial ``run_grid``;
* a campaign whose worker is **SIGKILLed mid-flight** resumes after
  restart with zero recomputation of already-published points.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.harness.export import to_json
from repro.harness.figures import FIGURE_GRIDS, fig2
from repro.harness.metrics import run_result_to_dict
from repro.harness.parallel import run_grid
from repro.serve.client import ServeClient
from repro.serve.daemon import worker_command
from repro.serve.worker import Worker


def worker_env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


class TestShardedFleet:
    def test_two_worker_processes_match_serial_run_grid(self, spool):
        points = FIGURE_GRIDS["fig2"](quick=True, scale=1 / 64, seed=3)
        client = ServeClient(spool)
        meta = client.submit_figure("fig2", quick=True, scale=1 / 64, seed=3)

        procs = [
            subprocess.Popen(
                worker_command(spool, shard, 2, drain=True, poll_s=0.1),
                env=worker_env(),
                stdout=subprocess.PIPE,
                text=True,
            )
            for shard in range(2)
        ]
        outputs = []
        for proc in procs:
            out, _ = proc.communicate(timeout=180)
            outputs.append(out)
            assert proc.returncode == 0, out

        # Both shards actually simulated (3 points each for a 6-point grid).
        for out in outputs:
            assert "3 simulated" in out, out

        status = client.status(meta.campaign_id)
        assert status.complete

        served = client.results(meta.campaign_id)
        direct = run_grid(points)
        a = json.dumps([run_result_to_dict(r) for r in served], sort_keys=True)
        b = json.dumps([run_result_to_dict(r) for r in direct], sort_keys=True)
        assert a == b

        # And the figure-level export is byte-identical to a direct run.
        assert to_json(client.figure_results(meta.campaign_id)) == \
            to_json([fig2(quick=True, scale=1 / 64, seed=3)])


class TestSigkillResume:
    def test_sigkilled_campaign_resumes_with_zero_recompute(self, spool):
        client = ServeClient(spool)
        meta = client.submit_figure("fig2", quick=True, scale=1 / 64, seed=3)
        records = client.queue.records(meta.campaign_id)
        total = len(records)

        # Service-mode worker (no --drain): it must be killed, not exit.
        proc = subprocess.Popen(
            worker_command(spool, 0, 1, drain=False, poll_s=0.05),
            env=worker_env(),
            stdout=subprocess.DEVNULL,
        )
        try:
            # Wait until at least one artifact is published, then SIGKILL.
            deadline = 120.0
            while client.status(meta.campaign_id).done == 0:
                if proc.poll() is not None:
                    pytest.fail("worker died before publishing anything")
                deadline -= 0.05
                assert deadline > 0, "no artifact appeared in time"
                time.sleep(0.05)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        published = client.status(meta.campaign_id).done
        assert published >= 1
        if published == total:
            pytest.skip("worker finished the whole grid before the kill")

        # Second life, in-process so the simulations counter is observable:
        # exactly the remainder is simulated, nothing is recomputed.
        worker = Worker(spool)
        stats = worker.drain(timeout_s=120)
        assert stats.executed == total - published
        assert worker.cache.stats.simulations == total - published
        assert client.status(meta.campaign_id).complete

        served = client.results(meta.campaign_id)
        direct = run_grid(
            FIGURE_GRIDS["fig2"](quick=True, scale=1 / 64, seed=3)
        )
        a = json.dumps([run_result_to_dict(r) for r in served], sort_keys=True)
        b = json.dumps([run_result_to_dict(r) for r in direct], sort_keys=True)
        assert a == b


class TestCliSurface:
    def test_serve_cli_round_trip(self, spool, tmp_path):
        """submit / status / worker --drain / results through the real CLI."""
        env = worker_env()

        def cli(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro", "serve", *args,
                 "--spool", str(spool)],
                env=env, capture_output=True, text=True, timeout=180,
            )

        submitted = cli("submit", "fig2", "--smoke", "--seed", "3",
                        "--id", "fig2smoke")
        assert submitted.returncode == 0, submitted.stderr
        assert "fig2smoke" in submitted.stdout

        drained = cli("worker", "--drain", "--poll", "0.1")
        assert drained.returncode == 0, drained.stderr

        status = cli("status", "fig2smoke", "--json")
        assert status.returncode == 0, status.stderr
        payload = json.loads(status.stdout)
        assert payload[0]["done"] == payload[0]["total"] == 6

        out_path = tmp_path / "served.json"
        results = cli("results", "fig2smoke", "--figure",
                      "--json", str(out_path))
        assert results.returncode == 0, results.stderr
        direct = to_json([fig2(quick=True, scale=1 / 64, seed=3)])
        assert out_path.read_text(encoding="utf-8") == direct
