"""The open-loop multi-tenant traffic generator (``repro.traffic``).

Every other workload here is closed-loop: a fixed batch of transactions per
thread, each issued the instant the previous one finishes, so a slow server
just stretches the run.  This one is *open-loop*: requests arrive on an
absolute schedule drawn from :mod:`repro.sim.arrivals` (Poisson or bursty),
and a request that finds its thread still busy queues behind it — the
latency recorded for it includes that queueing delay, which is the honest
way to measure tails (closed-loop measurement suffers coordinated
omission).

One ``open_loop`` benchmark instance is one *tenant*: the harness gives
each :class:`~repro.harness.config.BenchmarkSpec` its own simulated process
and therefore its own conflict domain, so the traffic figure's
shared-vs-isolated axis is exactly the paper's
:class:`~repro.params.HTMConfig` ``isolation`` knob.  Keys are skewed by a
seed-stable :class:`~repro.sim.arrivals.ZipfSampler` shared by the tenant's
threads — hot keys collide across threads and produce genuine conflicts
inside the tenant.

The store under the traffic is a miniature of one of the paper's stores
(``inner``):

* ``hybrid_index`` — DRAM B-tree index + NVM hash index over NVM payloads;
* ``dual_kv`` — mirrored DRAM and NVM hash maps, both updated in the
  request transaction;
* ``echo`` — a single persistent NVM hash table.

Per-request latency lands in the ``traffic.latency_ns`` histograms (exact
:class:`~repro.sim.stats.ReservoirHistogram` samples), which
:func:`~repro.harness.metrics.collect_metrics` folds into the cacheable
:class:`~repro.harness.metrics.RunResult` — so traffic points flow through
``run_grid``, the result cache, and the job service like any figure point.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..errors import ConfigError
from ..mem.address import MemoryKind
from ..sim.arrivals import ZipfSampler, bursty_arrivals, poisson_arrivals
from ..sim.stats import ReservoirHistogram
from .base import PayloadPool, Workload, WorkloadParams, write_payload
from .btree import TxBTree
from .hashmap import TxHashMap

#: Stores an ``open_loop`` tenant can run its traffic against.
INNER_STORES = ("hybrid_index", "dual_kv", "echo")

#: Arrival process names accepted by the ``arrival`` kwarg.
ARRIVAL_MODELS = ("poisson", "bursty")

#: Named rng streams each tenant thread forks off the system root.
ARRIVALS_STREAM = "open_loop.arrivals"
KEYS_STREAM = "open_loop.keys"

#: Fork salt spacing: one rng namespace per (process, thread) pair.
THREAD_FORK_SALT = 8191


def thread_fork(root, pid: int, thread_index: int):
    """The rng fork a tenant thread draws its streams from.

    A module-level function (not a method) so that
    :func:`repro.traffic.report.reconstruct_arrivals` can replay a thread's
    exact arrival schedule from the spec alone, without running the sim.
    """
    return root.fork(pid * THREAD_FORK_SALT + thread_index)


def arrival_times(
    rng,
    arrival: str = "poisson",
    mean_gap_ns: float = 50_000.0,
    horizon_ns: float = 2e6,
    burst_on_ns: float = 250_000.0,
    burst_off_ns: float = 250_000.0,
    burst_factor: float = 2.0,
) -> Generator[float, None, None]:
    """One thread's absolute arrival schedule; shared by the workload and
    the traffic report's offline replay.  Defaults mirror
    :class:`OpenLoopWorkload`'s constructor."""
    if arrival == "poisson":
        return poisson_arrivals(rng, mean_gap_ns, horizon_ns)
    return bursty_arrivals(
        rng,
        mean_gap_ns,
        horizon_ns,
        on_ns=burst_on_ns,
        off_ns=burst_off_ns,
        burst_factor=burst_factor,
    )


class OpenLoopWorkload(Workload):
    """Zipf-skewed open-loop put traffic against a tenant-local store."""

    name = "open_loop"

    def __init__(
        self,
        system,
        process,
        params: WorkloadParams,
        inner: str = "hybrid_index",
        tenant: int = 0,
        arrival: str = "poisson",
        mean_gap_ns: float = 50_000.0,
        horizon_ns: float = 2e6,
        zipf_theta: float = 0.9,
        burst_on_ns: float = 250_000.0,
        burst_off_ns: float = 250_000.0,
        burst_factor: float = 2.0,
    ) -> None:
        super().__init__(system, process, params)
        if inner not in INNER_STORES:
            raise ConfigError(f"unknown inner store {inner!r}")
        if arrival not in ARRIVAL_MODELS:
            raise ConfigError(f"unknown arrival model {arrival!r}")
        if horizon_ns <= 0:
            raise ConfigError("horizon_ns must be > 0")
        self.inner = inner
        self.tenant = tenant
        self.arrival = arrival
        self.mean_gap_ns = mean_gap_ns
        self.horizon_ns = horizon_ns
        self.sampler = ZipfSampler(params.keys, zipf_theta)
        self.burst_on_ns = burst_on_ns
        self.burst_off_ns = burst_off_ns
        self.burst_factor = burst_factor
        self.btree_index: Optional[TxBTree] = None
        self.hash_index: Optional[TxHashMap] = None
        self.mirror_map: Optional[TxHashMap] = None
        self.pool: Optional[PayloadPool] = None
        self.mirror_pool: Optional[PayloadPool] = None
        self._hist: Optional[ReservoirHistogram] = None
        self._tenant_hist: Optional[ReservoirHistogram] = None

    # -- lifecycle -------------------------------------------------------------

    def setup(self) -> None:
        heap = self.system.heap
        nbuckets = max(64, self.params.keys // 4)
        if self.inner == "hybrid_index":
            self.btree_index = TxBTree.create(heap, self.raw, MemoryKind.DRAM)
            self.hash_index = TxHashMap.create(
                heap, self.raw, MemoryKind.NVM, nbuckets=nbuckets
            )
            self.pool = PayloadPool(
                self.system, self.params.keys, self.value_bytes, MemoryKind.NVM
            )
        elif self.inner == "dual_kv":
            self.hash_index = TxHashMap.create(
                heap, self.raw, MemoryKind.DRAM, nbuckets=nbuckets
            )
            self.mirror_map = TxHashMap.create(
                heap, self.raw, MemoryKind.NVM, nbuckets=nbuckets
            )
            self.pool = PayloadPool(
                self.system, self.params.keys, self.value_bytes, MemoryKind.DRAM
            )
            self.mirror_pool = PayloadPool(
                self.system, self.params.keys, self.value_bytes, MemoryKind.NVM
            )
        else:  # echo
            self.hash_index = TxHashMap.create(
                heap, self.raw, MemoryKind.NVM, nbuckets=nbuckets
            )
            self.pool = PayloadPool(
                self.system, self.params.keys, self.value_bytes, MemoryKind.NVM
            )
        for key in range(self.params.initial_fill):
            self.hash_index.insert(self.raw, key, self.pool.block_for(key))
            if self.btree_index is not None:
                self.btree_index.insert(self.raw, key, self.pool.block_for(key))
            if self.mirror_map is not None:
                self.mirror_map.insert(
                    self.raw, key, self.mirror_pool.block_for(key)
                )
        stats = self.system.stats
        self._hist = stats.histogram(
            "traffic.latency_ns", factory=ReservoirHistogram
        )
        self._tenant_hist = stats.histogram(
            f"traffic.latency_ns.t{self.tenant}", factory=ReservoirHistogram
        )

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    # -- arrivals -------------------------------------------------------------

    def _arrival_times(self, rng) -> Generator[float, None, None]:
        return arrival_times(
            rng,
            arrival=self.arrival,
            mean_gap_ns=self.mean_gap_ns,
            horizon_ns=self.horizon_ns,
            burst_on_ns=self.burst_on_ns,
            burst_off_ns=self.burst_off_ns,
            burst_factor=self.burst_factor,
        )

    # -- request bodies -------------------------------------------------------

    def _request(self, batch: List[int], tag: int) -> Callable:
        if self.inner == "hybrid_index":

            def work(tx, batch=batch, tag=tag):
                for key in batch:
                    record = self.pool.block_for(key)
                    yield from write_payload(tx, record, self.value_bytes, tag)
                    self.hash_index.insert(tx, key, record)
                    self.btree_index.insert(tx, key, record)
                    yield

        elif self.inner == "dual_kv":

            def work(tx, batch=batch, tag=tag):
                for key in batch:
                    front = self.pool.block_for(key)
                    yield from write_payload(tx, front, self.value_bytes, tag)
                    self.hash_index.insert(tx, key, front)
                    back = self.mirror_pool.block_for(key)
                    yield from write_payload(tx, back, self.value_bytes, tag)
                    self.mirror_map.insert(tx, key, back)
                    yield

        else:  # echo

            def work(tx, batch=batch, tag=tag):
                for key in batch:
                    record = self.pool.block_for(key)
                    yield from write_payload(tx, record, self.value_bytes, tag)
                    self.hash_index.insert(tx, key, record)
                    yield

        return work

    def _make_body(self, thread_index: int) -> Callable:
        fork = thread_fork(self.system.rng, self.process.pid, thread_index)
        arrival_rng = fork.stream(ARRIVALS_STREAM)
        key_rng = fork.stream(KEYS_STREAM)
        ops = self.params.ops_per_tx

        def body(api) -> Generator[None, None, None]:
            stats = self.system.stats
            thread = api.thread
            request_index = 0
            for at_ns in self._arrival_times(arrival_rng):
                if thread.clock_ns < at_ns:
                    # Idle until the next arrival: open-loop, not batch.
                    thread.advance_to(at_ns)
                else:
                    stats.incr("traffic.backlogged")
                batch = [self.sampler.sample(key_rng) for _ in range(ops)]
                request_index += 1
                yield from api.run_transaction(
                    self._request(batch, request_index), ops=len(batch)
                )
                # Arrival-to-completion: queueing delay + retries included.
                latency_ns = thread.clock_ns - at_ns
                self._hist.record(latency_ns)
                self._tenant_hist.record(latency_ns)
                stats.incr("traffic.requests")
                yield

        return body

    # -- verification ---------------------------------------------------------

    def verify(self) -> bool:
        if not self.hash_index.check_integrity(self.raw):
            return False
        if self.btree_index is not None:
            if not self.btree_index.check_integrity(self.raw):
                return False
            if sorted(self.hash_index.keys(self.raw)) != self.btree_index.keys(
                self.raw
            ):
                return False
        if self.mirror_map is not None:
            if not self.mirror_map.check_integrity(self.raw):
                return False
            if sorted(self.hash_index.keys(self.raw)) != sorted(
                self.mirror_map.keys(self.raw)
            ):
                return False
        return True
