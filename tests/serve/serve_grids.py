"""Helpers shared by the job-service tests: tiny, millisecond grids."""

from __future__ import annotations

import dataclasses
from typing import List

from repro.harness.config import ExperimentSpec, consolidated
from repro.harness.parallel import GridPoint
from repro.params import HTMConfig
from repro.workloads import WorkloadParams


def tiny_spec(**changes) -> ExperimentSpec:
    """A spec that simulates in a few milliseconds."""
    spec = ExperimentSpec(
        name="serve-test",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap", 2,
            WorkloadParams(threads=2, txs_per_thread=2,
                           value_bytes=16 << 10, keys=64, initial_fill=16),
        ),
        scale=1 / 64,
        cores=4,
    )
    return dataclasses.replace(spec, **changes) if changes else spec


def tiny_grid(n: int = 4) -> List[GridPoint]:
    """``n`` distinct grid points (distinct seeds -> distinct fingerprints)."""
    return [
        GridPoint(spec=tiny_spec(seed=2020 + i), key=("seed", 2020 + i))
        for i in range(n)
    ]
