"""Tests for the two-level inclusive cache hierarchy."""

from __future__ import annotations

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.mem.controller import MemoryController
from repro.params import (
    CacheGeometry,
    LINE_SIZE,
    LatencyConfig,
    MachineConfig,
    MemoryConfig,
)


def make_hierarchy(cores=2, l1_lines=4, llc_lines=16):
    machine = MachineConfig(
        cores=cores,
        l1=CacheGeometry(size_bytes=l1_lines * LINE_SIZE, ways=2),
        llc=CacheGeometry(size_bytes=llc_lines * LINE_SIZE, ways=4),
        latency=LatencyConfig(),
        memory=MemoryConfig(),
    )
    controller = MemoryController(machine.memory, machine.latency)
    return CacheHierarchy(machine, controller), controller, machine


def dram_line(controller, index):
    return controller.address_space.dram_heap.base + index * LINE_SIZE


def nvm_line(controller, index):
    return controller.address_space.nvm_heap.base + index * LINE_SIZE


class TestAccessPath:
    def test_cold_miss_goes_to_memory(self):
        hierarchy, controller, machine = make_hierarchy()
        addr = dram_line(controller, 0)
        result = hierarchy.access(0, addr, False)
        assert result.level == "mem"
        assert result.llc_miss
        expected = (
            machine.latency.l1_ns + machine.latency.llc_ns + machine.latency.dram_ns
        )
        assert result.latency_ns == pytest.approx(expected)

    def test_l1_hit_after_fill(self):
        hierarchy, controller, machine = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, False)
        result = hierarchy.access(0, addr, False)
        assert result.level == "l1"
        assert result.latency_ns == pytest.approx(machine.latency.l1_ns)

    def test_llc_hit_from_other_core(self):
        hierarchy, controller, machine = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, False)
        result = hierarchy.access(1, addr, False)
        assert result.level == "llc"
        assert result.latency_ns == pytest.approx(
            machine.latency.l1_ns + machine.latency.llc_ns
        )

    def test_nvm_latency_charged(self):
        hierarchy, controller, machine = make_hierarchy()
        addr = nvm_line(controller, 0)
        result = hierarchy.access(0, addr, False)
        expected = (
            machine.latency.l1_ns
            + machine.latency.llc_ns
            + machine.latency.nvm_read_ns
        )
        assert result.latency_ns == pytest.approx(expected)


class TestCoherence:
    def test_write_invalidates_other_l1_copies(self):
        hierarchy, controller, _ = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, False)
        hierarchy.access(1, addr, False)
        assert hierarchy.l1_resident(0, addr)
        assert hierarchy.l1_resident(1, addr)
        hierarchy.access(0, addr, True)
        assert hierarchy.l1_resident(0, addr)
        assert not hierarchy.l1_resident(1, addr)

    def test_write_sets_dirty_and_tx_writer(self):
        hierarchy, controller, _ = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, True, tx_id=7)
        meta = hierarchy.l1s[0].peek(addr)
        assert meta.dirty
        assert meta.tx_writer == 7

    def test_tx_read_records_reader(self):
        hierarchy, controller, _ = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, False, tx_id=7)
        meta = hierarchy.l1s[0].peek(addr)
        assert 7 in meta.tx_readers


class TestEvictions:
    def test_l1_eviction_propagates_state_to_llc(self):
        hierarchy, controller, _ = make_hierarchy(l1_lines=2)
        # 1 set x 2 ways L1: the third distinct line evicts the first.
        lines = [dram_line(controller, i) for i in range(3)]
        hierarchy.access(0, lines[0], True, tx_id=5)
        hierarchy.access(0, lines[1], False)
        hierarchy.access(0, lines[2], False)
        assert not hierarchy.l1_resident(0, lines[0])
        llc_meta = hierarchy.llc.peek(lines[0])
        assert llc_meta.dirty
        assert llc_meta.tx_writer == 5

    def test_l1_evict_callback_for_tx_written_lines(self):
        hierarchy, controller, _ = make_hierarchy(l1_lines=2)
        events = []
        hierarchy.on_l1_evict = lambda core, meta: events.append(meta.line_addr)
        lines = [dram_line(controller, i) for i in range(3)]
        hierarchy.access(0, lines[0], True, tx_id=5)
        hierarchy.access(0, lines[1], False)
        hierarchy.access(0, lines[2], False)
        assert events == [lines[0]]

    def test_llc_eviction_back_invalidates_l1(self):
        hierarchy, controller, _ = make_hierarchy(l1_lines=64, llc_lines=4)
        # LLC: 1 set x 4 ways; fill 5 distinct lines.
        lines = [dram_line(controller, i) for i in range(5)]
        for line in lines:
            hierarchy.access(0, line, False)
        assert not hierarchy.llc_resident(lines[0])
        assert not hierarchy.l1_resident(0, lines[0])

    def test_llc_evict_callback_carries_directory_entry(self):
        hierarchy, controller, _ = make_hierarchy(l1_lines=64, llc_lines=4)
        events = []
        hierarchy.on_llc_evict = lambda meta, entry: events.append((meta, entry))
        lines = [dram_line(controller, i) for i in range(5)]
        hierarchy.access(0, lines[0], True, tx_id=9)
        hierarchy.directory.record_access(lines[0], 9, True)
        for line in lines[1:]:
            hierarchy.access(0, line, False)
        assert len(events) == 1
        meta, entry = events[0]
        assert meta.line_addr == lines[0]
        assert entry is not None and entry.tx_owner == 9

    def test_untracked_eviction_no_callback(self):
        hierarchy, controller, _ = make_hierarchy(l1_lines=64, llc_lines=4)
        events = []
        hierarchy.on_llc_evict = lambda meta, entry: events.append(meta)
        for i in range(5):
            hierarchy.access(0, dram_line(controller, i), False)
        assert events == []

    def test_dirty_nontx_eviction_counts_writeback(self):
        hierarchy, controller, _ = make_hierarchy(l1_lines=64, llc_lines=4)
        hierarchy.access(0, dram_line(controller, 0), True)
        for i in range(1, 5):
            hierarchy.access(0, dram_line(controller, i), False)
        assert hierarchy.writebacks == 1


class TestTransactionOps:
    def test_invalidate_written_lines(self):
        hierarchy, controller, _ = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, True, tx_id=3)
        hierarchy.directory.record_access(addr, 3, True)
        count = hierarchy.invalidate_written_lines(3, {addr})
        assert count == 1
        assert not hierarchy.l1_resident(0, addr)
        assert not hierarchy.llc_resident(addr)

    def test_clear_tx_markers_keeps_lines_resident(self):
        hierarchy, controller, _ = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, True, tx_id=3)
        hierarchy.clear_tx_markers(3, {addr})
        assert hierarchy.l1_resident(0, addr)
        meta = hierarchy.l1s[0].peek(addr)
        assert meta.tx_writer is None

    def test_wipe(self):
        hierarchy, controller, _ = make_hierarchy()
        addr = dram_line(controller, 0)
        hierarchy.access(0, addr, False)
        hierarchy.wipe()
        assert not hierarchy.l1_resident(0, addr)
        assert not hierarchy.llc_resident(addr)
