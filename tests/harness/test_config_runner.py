"""Tests for experiment configuration and the runner."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigError, SimulationError
from repro.harness.cache import spec_fingerprint
from repro.harness.config import (
    BenchmarkSpec,
    ExperimentSpec,
    consolidated,
    mixed_pmdk,
)
from repro.harness.metrics import RunResult
from repro.harness.runner import ExperimentFailure, run_experiment, run_series
from repro.params import HTMConfig
from repro.workloads import WorkloadParams


def small_params():
    return WorkloadParams(
        threads=2, txs_per_thread=2, value_bytes=16 << 10,
        keys=64, initial_fill=16,
    )


def small_spec(design="uhtm", **kwargs):
    return ExperimentSpec(
        name="t",
        htm=HTMConfig(design=design),
        benchmarks=consolidated("hashmap", 2, small_params()),
        scale=1 / 16,
        cores=4,
        **kwargs,
    )


class TestSpecs:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigError):
            BenchmarkSpec("no_such_bench", small_params())

    def test_empty_benchmarks_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentSpec(name="x", htm=HTMConfig(), benchmarks=())

    def test_consolidated_builds_instances(self):
        benches = consolidated("btree", 4, small_params())
        assert len(benches) == 4
        assert all(b.workload == "btree" for b in benches)

    def test_mixed_pmdk(self):
        names = [b.workload for b in mixed_pmdk(small_params())]
        assert names == ["hashmap", "btree", "rbtree", "skiplist"]

    def test_kwargs_roundtrip(self):
        bench = BenchmarkSpec(
            "echo", small_params(), (("long_tx_ratio", 0.01),)
        )
        assert bench.kwargs_dict() == {"long_tx_ratio": 0.01}

    def test_machine_uses_cache_scale(self):
        spec = small_spec()
        machine = spec.machine()
        # Default compensation: caches at scale/16.
        assert machine.llc.num_sets == int(16384 * (1 / 16) / 16)

    def test_explicit_cache_scale(self):
        spec = small_spec(cache_scale=1 / 16)
        assert spec.machine().llc.num_sets == 1024


class TestRunner:
    def test_run_produces_metrics(self):
        result = run_experiment(small_spec())
        assert isinstance(result, RunResult)
        assert result.committed_ops > 0
        assert result.elapsed_ns > 0
        assert result.verified
        assert result.throughput > 0

    def test_membound_instances_run_and_stop(self):
        result = run_experiment(small_spec(membound_instances=1))
        assert result.committed_ops > 0

    def test_run_series_labels(self):
        specs = [small_spec(), small_spec(design="ideal")]
        results = run_series(specs)
        assert [r.label for r in results] == ["1k_opt", "Ideal"]

    def test_run_series_parallel_matches_serial(self):
        specs = [small_spec(), small_spec(design="ideal")]
        assert run_series(specs, jobs=2) == run_series(specs)

    def test_determinism_across_runs(self):
        first = run_experiment(small_spec())
        second = run_experiment(small_spec())
        assert first.elapsed_ns == second.elapsed_ns
        assert first.committed_ops == second.committed_ops
        assert first.aborts == second.aborts


class TestExperimentFailure:
    """A point dying mid-grid must stay attributable (label + spec hash)
    and must not lose the metrics collected before the failure."""

    def failing_spec(self):
        # A step cap far too small for the workload to finish.
        return small_spec(max_steps=5)

    def test_step_cap_failure_is_attributable(self):
        spec = self.failing_spec()
        with pytest.raises(ExperimentFailure) as excinfo:
            run_experiment(spec)
        failure = excinfo.value
        assert isinstance(failure, SimulationError)  # old catches still work
        assert failure.label == spec.htm.label
        assert failure.spec_hash == spec_fingerprint(spec)
        assert failure.spec_hash[:12] in str(failure)
        assert failure.label in str(failure)

    def test_partial_metrics_survive_the_failure(self):
        with pytest.raises(ExperimentFailure) as excinfo:
            run_experiment(self.failing_spec())
        partial = excinfo.value.partial
        assert isinstance(partial, RunResult)
        assert not partial.verified  # never report a dead run as verified
        assert partial.elapsed_ns >= 0

    def test_failure_pickles_intact(self):
        """Pool workers send failures back through pickle; the attribution
        fields must survive the trip."""
        with pytest.raises(ExperimentFailure) as excinfo:
            run_experiment(self.failing_spec())
        failure = excinfo.value
        rebuilt = pickle.loads(pickle.dumps(failure))
        assert isinstance(rebuilt, ExperimentFailure)
        assert rebuilt.label == failure.label
        assert rebuilt.spec_hash == failure.spec_hash
        assert rebuilt.partial == failure.partial
        assert str(rebuilt) == str(failure)


class TestRunResultDerived:
    def test_abort_rate_and_decomposition(self):
        result = RunResult(
            label="x", elapsed_ns=1e6, committed_ops=10, commits=10,
            begins=20, aborts=10,
            aborts_by_reason={
                "false_positive": 4, "capacity": 2, "conflict_coherence": 3,
                "lock_preempted": 1,
            },
        )
        assert result.abort_rate == 0.5
        assert result.false_positive_share == 0.4
        decomposition = result.abort_decomposition()
        assert decomposition["false_positive"] == 0.2
        assert decomposition["capacity"] == 0.1
        assert decomposition["true_conflict"] == 0.2

    def test_speedup(self):
        base = RunResult("a", 2e6, 10, 10, 10, 0)
        fast = RunResult("b", 1e6, 10, 10, 10, 0)
        assert fast.speedup_over(base) == 2.0

    def test_zero_guards(self):
        empty = RunResult("z", 0.0, 0, 0, 0, 0)
        assert empty.throughput == 0.0
        assert empty.abort_rate == 0.0
        assert empty.false_positive_share == 0.0
