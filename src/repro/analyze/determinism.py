"""DET001 — determinism.

Byte-identical replays under one seed (PAPER.md §III) require that every
stochastic or time-dependent decision flows through the named, seeded
streams of :mod:`repro.sim.rng`.  This checker flags the ways entropy leaks
in:

* ``import random`` / ``import secrets`` anywhere outside the sanctioned
  wrapper (``sim/rng.py``) — bare module-level randomness is shared global
  state whose draw order depends on call order across the whole process;
* wall-clock reads (``time.time``, ``datetime.now``, ``os.urandom``,
  ``uuid.uuid4``, …) — the one sanctioned site is the
  ``harness/timer.py`` stopwatch used by CLIs for progress lines;
* iteration over syntactically-evident unordered collections (``set``
  literals/calls/unions, set-annotated names and attributes, ``.keys()``
  views) in sim-critical packages — set iteration order depends on the
  interpreter's hash layout and insertion history, so a loop over one can
  reorder aborts, evictions, or log appends between otherwise identical
  runs.  Iterate ``sorted(...)`` instead (dicts are insertion-ordered and
  fine to iterate directly).

The unordered-iteration analysis is deliberately syntactic: it sees set
displays, ``set()``/``frozenset()`` calls, unions of those, names and
parameters annotated ``Set[...]``, attributes/callables annotated set-typed
anywhere in the analysed project, and ``.keys()`` calls.  It does not chase
values through containers; the determinism regression test backstops what
the static pass cannot see.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from .core import (
    Checker,
    Finding,
    Project,
    SourceFile,
    in_type_checking_block,
    is_set_annotation,
    parent_of,
    register,
)
from .layers import CLOCK_FUNNEL_FILES

#: Modules whose import is itself a finding.
BANNED_MODULES = frozenset({"random", "secrets"})

#: Files allowed to import the banned entropy sources (posix path suffixes).
SANCTIONED_RANDOM_FILES = ("repro/sim/rng.py",)

#: Files allowed to read the wall clock — the declared funnel set from the
#: layers registry (CLK008 enforces the stronger call-graph property over
#: the same list).
SANCTIONED_CLOCK_FILES = CLOCK_FUNNEL_FILES

#: ``module -> attribute names`` whose call reads wall-clock or OS entropy.
NONDETERMINISTIC_CALLS: Dict[str, frozenset] = {
    "time": frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
        }
    ),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}

#: Call heads whose result does not depend on argument iteration order, so a
#: comprehension directly inside them may iterate an unordered collection.
ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "set", "frozenset", "len"}
)

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_PRESERVING_WRAPPERS = frozenset({"list", "tuple"})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_sanctioned(source: SourceFile, suffixes) -> bool:
    posix = source.path.as_posix()
    return any(posix.endswith(suffix) for suffix in suffixes)


class _ScopeSets:
    """Set-typed names visible in one function (or module) scope."""

    def __init__(self, scope: ast.AST, project: Project) -> None:
        self.project = project
        self.names: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if arg.annotation is not None and is_set_annotation(arg.annotation):
                    self.names.add(arg.arg)
        # Two passes so an alias of an earlier set-typed name resolves
        # (``involved = writers | readers`` after ``writers: Set[int]``).
        for _ in range(2):
            for node in ast.walk(scope):
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    if is_set_annotation(node.annotation):
                        self.names.add(node.target.id)
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and self.is_set_like(
                        node.value
                    ):
                        self.names.add(target.id)

    def is_set_like(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self.project.set_typed_attrs
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self.is_set_like(node.left) or self.is_set_like(node.right)
        if isinstance(node, ast.Call):
            head = node.func
            if isinstance(head, ast.Name):
                if head.id in _SET_CONSTRUCTORS:
                    return True
                if head.id in _SET_PRESERVING_WRAPPERS and node.args:
                    # list(a_set) is just as unordered as the set itself.
                    return self.is_set_like(node.args[0])
                if head.id in self.project.set_returning_callables:
                    return True
            if isinstance(head, ast.Attribute):
                if head.attr == "keys":
                    return True
                if head.attr in self.project.set_returning_callables:
                    return True
        return False


@register
class DeterminismChecker(Checker):
    rule = "DET001"
    description = (
        "all randomness flows through repro.sim.rng; no wall clock outside "
        "the timer helper; no iteration over unordered collections in "
        "sim-critical packages"
    )

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        findings.extend(self._check_entropy_imports(source))
        findings.extend(self._check_clock_calls(source))
        if source.sim_critical:
            findings.extend(self._check_unordered_iteration(source, project))
        return findings

    # -- entropy imports ----------------------------------------------------

    def _check_entropy_imports(self, source: SourceFile) -> Iterable[Finding]:
        if _is_sanctioned(source, SANCTIONED_RANDOM_FILES):
            return
        for node in ast.walk(source.tree):
            if in_type_checking_block(node):
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            source,
                            node,
                            f"'import {alias.name}' bypasses the seeded "
                            "RngStreams; draw from a named stream of "
                            "repro.sim.rng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = node.module.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            source,
                            node,
                            f"'from {node.module} import ...' bypasses the "
                            "seeded RngStreams; draw from a named stream of "
                            "repro.sim.rng instead",
                        )

    # -- wall clock ---------------------------------------------------------

    def _check_clock_calls(self, source: SourceFile) -> Iterable[Finding]:
        if _is_sanctioned(source, SANCTIONED_CLOCK_FILES):
            return
        imported_clock_names: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                banned = NONDETERMINISTIC_CALLS.get(node.module or "")
                if not banned:
                    continue
                if in_type_checking_block(node):
                    continue
                for alias in node.names:
                    if alias.name in banned:
                        imported_clock_names.add(alias.asname or alias.name)
                        yield self.finding(
                            source,
                            node,
                            f"'from {node.module} import {alias.name}' reads "
                            "the wall clock / OS entropy; use the "
                            "repro.harness.timer stopwatch (CLIs) or a "
                            "seeded stream (simulation)",
                        )
            if not isinstance(node, ast.Call):
                continue
            head = node.func
            if isinstance(head, ast.Attribute) and isinstance(
                head.value, ast.Name
            ):
                banned = NONDETERMINISTIC_CALLS.get(head.value.id)
                if banned and head.attr in banned:
                    yield self.finding(
                        source,
                        node,
                        f"{head.value.id}.{head.attr}() is nondeterministic; "
                        "use the repro.harness.timer stopwatch (CLIs) or a "
                        "seeded stream (simulation)",
                    )
            elif isinstance(head, ast.Name) and head.id in imported_clock_names:
                yield self.finding(
                    source,
                    node,
                    f"{head.id}() reads the wall clock; use the "
                    "repro.harness.timer stopwatch instead",
                )

    # -- unordered iteration --------------------------------------------------

    def _check_unordered_iteration(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        scope_cache: Dict[int, _ScopeSets] = {}

        def scope_sets_for(node: ast.AST) -> _ScopeSets:
            scope: ast.AST = source.tree
            current: Optional[ast.AST] = node
            while current is not None:
                if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    scope = current
                    break
                current = parent_of(current)
            key = id(scope)
            if key not in scope_cache:
                scope_cache[key] = _ScopeSets(scope, project)
            return scope_cache[key]

        for node in ast.walk(source.tree):
            iterables: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                if self._order_insensitive_context(node):
                    continue
                iterables.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.SetComp):
                continue  # result is itself unordered; order cannot leak
            else:
                continue
            scope_sets = scope_sets_for(node)
            for iterable in iterables:
                if scope_sets.is_set_like(iterable):
                    yield self.finding(
                        source,
                        iterable,
                        "iteration over an unordered collection "
                        f"({ast.unparse(iterable)}); wrap it in sorted(...) "
                        "so replay order is seed-stable",
                    )

    @staticmethod
    def _order_insensitive_context(node: ast.AST) -> bool:
        parent = parent_of(node)
        if isinstance(parent, ast.Call):
            head = parent.func
            if isinstance(head, ast.Name) and head.id in ORDER_INSENSITIVE_CALLS:
                return True
        return False
