"""Tests for the crash-consistency oracle and the recovery audit."""

from __future__ import annotations

import pytest

from repro.faults import (
    CampaignConfig,
    FaultPlan,
    after_commit_mark,
    after_nvm_append,
    build_system,
    execute_plan,
)
from repro.mem.address import line_of
from repro.mem.address import MemoryKind, Region
from repro.mem.log import HardwareLog, RecordKind

CONFIG = CampaignConfig(workload="hashmap", crashes=1, seed=11)
BUGGY = CampaignConfig(
    workload="hashmap", crashes=1, seed=11, inject_bug="skip_commit_mark"
)


class TestOracleOnSoundMachine:
    def test_clean_run_verifies(self):
        system, _workload, oracle = build_system(CONFIG)
        system.run()
        system.crash()
        system.recover()
        verdict = oracle.verify()
        assert verdict.ok, verdict.describe()
        assert verdict.committed_txs > 0
        assert verdict.words_checked > 0

    def test_crash_in_torn_commit_window_verifies(self):
        outcome = execute_plan(CONFIG, after_nvm_append(1))
        assert outcome.ok, outcome.verdict.describe()
        # The in-flight transaction's record must have been discarded.
        assert outcome.report.discarded_records >= 1

    def test_crash_after_commit_mark_keeps_the_commit(self):
        outcome = execute_plan(CONFIG, after_commit_mark(1))
        assert outcome.ok, outcome.verdict.describe()
        assert outcome.verdict.committed_txs >= 1
        assert outcome.report.replayed_lines >= 1


class TestOracleCatchesDurabilityBugs:
    def test_suppressed_commit_mark_is_flagged_as_lost_commit(self):
        """Oracle self-validation: with durable commit marks dropped, every
        architecturally committed transaction is lost at the crash, and the
        oracle must say so."""
        outcome = execute_plan(BUGGY, FaultPlan())
        assert not outcome.ok
        assert any("lost/torn" in f for f in outcome.verdict.failures)

    def test_bug_is_architectural_not_log_derived(self):
        """The oracle's expectations come from the commit point, not the
        (corrupted) log, so committed_txs still counts the lost commits."""
        outcome = execute_plan(BUGGY, FaultPlan())
        assert outcome.verdict.committed_txs > 0
        assert outcome.report.replayed_lines == 0  # nothing marked committed


class TestRecoveryReport:
    def test_report_fields(self):
        system, _workload, _oracle = build_system(CONFIG)
        system.run()
        crash = system.crash()
        report = system.recover()
        assert crash.lost_dram_words >= 0
        assert report.replayed_lines >= 0
        assert report.surviving_nvm_words > 0
        assert report.idempotent is True

    def test_double_recovery_is_idempotent(self):
        system, _workload, _oracle = build_system(CONFIG)
        system.run()
        system.crash()
        first = system.recover()
        again = system.recover()
        assert again.replayed_lines == 0
        assert again.discarded_records == 0
        assert again.surviving_nvm_words == first.surviving_nvm_words

    def test_uncommitted_records_are_discarded_and_counted(self):
        outcome = execute_plan(CONFIG, after_nvm_append(2))
        assert outcome.report.discarded_records >= 1
        # And a repeat recovery has nothing left to discard:
        system, _workload, _oracle = build_system(CONFIG)
        system.run()
        system.crash()
        system.recover()
        assert system.controller.discard_uncommitted_nvm_records() == 0


class TestCompactionDurabilityOrder:
    """Log compaction must drain the DRAM cache before reclaiming committed
    transactions' redo records — until the drain, those records can be the
    only durable copy of a committed line."""

    def test_pre_compact_hook_runs_before_reclaim(self):
        # A log that fits two data records: the third append must compact.
        size = 3 * (16 + 64) - 8
        log = HardwareLog(Region(MemoryKind.NVM, 0x1000, size), "nvm")
        drained = []
        log.pre_compact = lambda: drained.append(len(log))
        log.append_data(RecordKind.REDO, 1, 0x40, {0x40: 1})
        log.append_mark(RecordKind.COMMIT, 1)
        log.append_data(RecordKind.REDO, 2, 0x80, {0x80: 2})
        log.append_data(RecordKind.REDO, 2, 0xC0, {0xC0: 3})  # triggers
        assert drained, "compaction ran without the pre-compact drain"

    def test_controller_wires_drain_before_nvm_reclaim(self):
        system, _workload, _oracle = build_system(CONFIG)
        controller = system.controller
        assert controller.nvm_log.pre_compact is not None
        word = system.heap.alloc_words(1, MemoryKind.NVM)
        controller.dram_cache.fill(line_of(word), {word: 5}, 1, committed=True)
        before = controller.background_nvm_writes
        controller.nvm_log.pre_compact()
        assert controller.background_nvm_writes > before
        assert len(controller.dram_cache) == 0
        assert controller.nvm.load(word) == 5
