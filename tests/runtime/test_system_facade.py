"""Tests for the System facade and process plumbing."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind


def make_system(cores=4):
    return System(MachineConfig.scaled(1 / 64, cores=cores), HTMConfig())


class TestProcesses:
    def test_pids_are_sequential_from_one(self):
        system = make_system()
        a = system.process()
        b = system.process()
        assert (a.pid, b.pid) == (1, 2)
        assert a.domain_id == 1

    def test_default_names(self):
        system = make_system()
        assert system.process().name == "proc1"
        assert system.process("app").name == "app"

    def test_thread_core_assignment_round_robin(self):
        system = make_system(cores=2)
        proc = system.process()
        cores = []

        def body(api):
            cores.append(api.core_id)
            yield

        for _ in range(4):
            proc.thread(body)
        system.run()
        assert cores == [0, 1, 0, 1]

    def test_thread_names(self):
        system = make_system()
        proc = system.process("app")
        thread = proc.thread(lambda api: iter(()), name="worker")
        assert thread.name == "worker"
        other = proc.thread(lambda api: iter(()))
        assert other.name == "app.t1"


class TestFacadeMetrics:
    def run_small(self):
        system = make_system()
        proc = system.process()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)

        def body(api):
            for _ in range(5):
                yield from api.run_transaction(
                    lambda tx: tx.write_word(addr, 1)
                )

        proc.thread(body)
        system.run()
        return system

    def test_throughput_positive(self):
        system = self.run_small()
        assert system.throughput_ops_per_ms() > 0
        assert system.elapsed_ns > 0

    def test_throughput_zero_before_run(self):
        assert make_system().throughput_ops_per_ms() == 0.0

    def test_abort_rate_zero_without_aborts(self):
        system = self.run_small()
        assert system.abort_rate() == 0.0
        assert system.abort_breakdown() == {}

    def test_abort_rate_counts(self):
        system = make_system()
        from repro.errors import AbortReason
        from repro.sim.engine import SimThread

        thread = SimThread(0, "t", lambda t: iter(()))
        tx = system.htm.begin(thread, 0, 1, 1)
        system.htm._abort(tx, AbortReason.EXPLICIT)
        assert system.abort_rate() == 1.0
        assert system.abort_breakdown() == {"explicit": 1}


class TestEngineWakeEdge:
    def test_wake_with_past_timestamp_keeps_clock(self):
        from repro.sim.engine import Engine, SimThread

        engine = Engine()

        def sleeper(thread):
            thread.advance(100)
            engine.block(thread)
            yield
            yield

        def waker(thread):
            thread.advance(10)
            engine.wake(target, at_ns=5)  # earlier than target's clock
            yield

        target = SimThread(0, "sleeper", sleeper)
        engine.add_thread(target)
        engine.add_thread(SimThread(1, "waker", waker))
        engine.run()
        assert target.clock_ns == 100  # never moved backwards
