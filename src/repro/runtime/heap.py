"""A word-addressable heap over the DRAM and NVM heap regions.

Workload data structures allocate nodes and payload blocks here and then
access them *only* through a memory context (transactional or not), so every
touched word produces the cache/HTM events the simulator measures.

Allocation itself is modelled as non-transactional runtime bookkeeping (the
PMDK pool allocator's metadata traffic is out of scope): an aborted
transaction's fresh allocations are simply re-allocated on retry.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..mem.address import MemoryKind
from ..mem.allocator import RegionAllocator
from ..mem.controller import MemoryController
from ..params import WORD_SIZE


class TxHeap:
    """Region allocators for both memory kinds plus layout helpers."""

    def __init__(self, controller: MemoryController) -> None:
        space = controller.address_space
        self._allocators = {
            MemoryKind.DRAM: RegionAllocator(space.dram_heap),
            MemoryKind.NVM: RegionAllocator(space.nvm_heap),
        }
        self.controller = controller

    def allocator(self, kind: MemoryKind) -> RegionAllocator:
        return self._allocators[kind]

    def alloc(self, nbytes: int, kind: MemoryKind) -> int:
        """Allocate ``nbytes`` (line-aligned) in the given medium."""
        return self._allocators[kind].alloc(nbytes)

    def alloc_words(self, nwords: int, kind: MemoryKind) -> int:
        if nwords <= 0:
            raise ConfigError(f"nwords must be positive, got {nwords}")
        return self.alloc(nwords * WORD_SIZE, kind)

    def free(self, addr: int, nbytes: int, kind: MemoryKind) -> None:
        self._allocators[kind].free(addr, nbytes)

    def free_words(self, addr: int, nwords: int, kind: MemoryKind) -> None:
        self.free(addr, nwords * WORD_SIZE, kind)

    @staticmethod
    def field(base: int, index: int) -> int:
        """Address of the ``index``-th 64-bit field of an object at ``base``."""
        return base + index * WORD_SIZE
