"""Shared configuration for the figure-regeneration benchmarks.

Each benchmark regenerates one table or figure of the paper.  By default the
*quick* matrix runs (reduced sweeps, suitable for CI); set ``REPRO_FULL=1``
to run the paper's full matrix.  ``REPRO_JOBS=N`` fans each figure's grid
out over N worker processes — results are bit-identical for any value (see
``docs/HARNESS.md``), so the timing changes but the tables and the shape
assertions do not.

The printed tables are the deliverable; the timing measured by
pytest-benchmark is the harness cost of regenerating the figure.

``-m smoke`` selects the tiny one-point-per-figure tier instead: it proves
every figure's grid still builds and simulates end-to-end in seconds,
without paying for a full matrix.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    return os.environ.get("REPRO_FULL", "") != "1"


@pytest.fixture(scope="session")
def jobs() -> int:
    """Worker processes per figure grid (``REPRO_JOBS``, default serial)."""
    return int(os.environ.get("REPRO_JOBS", "1"))


@pytest.fixture
def show():
    """Print a FigureResult under the benchmark output."""

    def _show(result) -> None:
        print()
        print(result.pretty())

    return _show


@pytest.fixture(scope="session")
def smoke_point():
    """Run the first grid point of a figure at 1/64 scale — the smoke
    tier's seconds-cheap proof that the figure's spec construction,
    workloads, and metrics pipeline still run end-to-end."""
    from repro.harness.parallel import run_grid

    def _run(grid):
        points = grid(quick=True, scale=1 / 64, seed=2020)[:1]
        (result,) = run_grid(points)
        return result

    return _run
