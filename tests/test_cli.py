"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table1" in out
        # The listing covers the subcommand table too, so every tool is
        # discoverable from one place.
        assert "serve" in out and "bench" in out and "trace" in out

    def test_static_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "UHTM" in out
        assert "regenerated" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Requester-Wins" in capsys.readouterr().out

    def test_unknown_figure_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_abort_claim_runs(self, capsys):
        assert main(["abort_claim", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "signature_only" in out

    def test_engine_prefix_dispatches_to_subcommand(self, capsys, monkeypatch):
        # `--engine X <subcommand> ...` sets the process default, then
        # dispatches — how the CI engine matrix drives the tool smokes.
        # setenv (not delenv) so monkeypatch restores the key at teardown
        # even though main() writes os.environ directly.
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        assert (
            main(
                ["--engine", "scalar", "faults", "--workload", "hashmap",
                 "--crashes", "2", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine: scalar" in out
        assert "recoveries verified" in out

    def test_engine_prefix_rejects_unknown_engine(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "scalar")
        assert main(["--engine", "turbo", "faults", "--workload", "x"]) == 2
        assert "unknown engine" in capsys.readouterr().err
