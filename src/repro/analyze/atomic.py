"""ATOM005 — staged-rename publication.

The spool protocol (SERVE.md) and the result cache survive crashes and
concurrent writers only because every *published* file — one that another
process resolves independently and may read at any moment — appears
atomically: content is staged under a writer-unique tmp sibling and renamed
into place with ``Path.replace``/``os.replace``.  A direct
``open(published, "w")`` exposes a torn file to every reader between the
first byte and the last.

This checker follows path values through each function body (and one call
level across files, via the dataflow engine's published-parameter
propagation) from the producers declared in
:mod:`repro.analyze.protocol` to the write sinks, and flags:

* **direct write** — a write sink whose target is a published path;
* **staged, never published** — a tmp derived from a published path is
  written but no ``replace`` onto the destination follows in the same body
  (the crash window the fault oracle catches dynamically);
* **rename-before-flush** — the ``replace`` precedes the staged write, so
  readers race a still-open file;
* **missing token read-back** — an atomic helper overwrites a *lease* path
  (a steal-rename) without reading the file back to compare ownership
  tokens: a racing stealer's rename can silently clobber ours;
* **non-atomic write in a durability-critical scope** — a blanket
  (warning-severity) net over ``serve/`` and ``harness/cache.py`` for
  writes whose target dataflow cannot classify.

``open(path, "x")`` is exempt everywhere: exclusive-create *is* the atomic
claim primitive (queue leases).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from .core import Checker, Finding, Project, SourceFile, register
from .dataflow import (
    FunctionKey,
    call_terminal,
    engine_for,
    iter_own_nodes,
    node_position,
    resolve_value,
    single_assignments,
)
from .protocol import (
    ATOMIC_WRITE_HELPERS,
    LEASE_PATH_PRODUCERS,
    LEASE_READ_BACK_CALLS,
    PUBLISHED_PATH_PRODUCERS,
    STAGING_DERIVATIONS,
    is_durability_critical,
)

_WRITE_MODES = frozenset("wa")


def _write_mode(call: ast.Call, position: int) -> str:
    """The file mode of an ``open``-style call (positional or keyword).

    ``position`` is where the mode sits positionally: 1 for builtin
    ``open(path, mode)``, 0 for ``Path.open(mode)``.
    """
    if len(call.args) > position:
        mode = call.args[position]
    else:
        mode = next(
            (kw.value for kw in call.keywords if kw.arg == "mode"), None
        )
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return "r"


def _is_write_mode(mode: str) -> bool:
    return bool(_WRITE_MODES & set(mode)) and "x" not in mode


def _sink_target(node: ast.AST) -> Optional[Tuple[ast.AST, ast.Call]]:
    """``(path expression, call)`` if ``node`` writes a file by path.

    Sinks: ``open(p, "w"/"a")``, ``p.open("w"/"a")``, ``p.write_text(...)``,
    ``p.write_bytes(...)``.  ``.write()`` on an already-open handle is not a
    sink — the handle's origin was already classified at its ``open``.
    """
    if not isinstance(node, ast.Call):
        return None
    head = node.func
    if isinstance(head, ast.Name) and head.id == "open":
        if node.args and _is_write_mode(_write_mode(node, 1)):
            return node.args[0], node
        return None
    if isinstance(head, ast.Attribute):
        if head.attr == "open" and _is_write_mode(_write_mode(node, 0)):
            return head.value, node
        if head.attr in ("write_text", "write_bytes"):
            return head.value, node
    return None


class _ScopeState:
    """Per-scope dataflow: published names, staging names, replace calls."""

    def __init__(
        self,
        scope: ast.AST,
        published_params: Dict[str, str],
    ) -> None:
        self.scope = scope
        self.env = single_assignments(scope)
        self.published_params = published_params

    def producer_of(self, expr: Optional[ast.AST]) -> Optional[str]:
        """The producer name behind ``expr``, if it is a published path."""
        if isinstance(expr, ast.Name) and expr.id in self.published_params:
            return self.published_params[expr.id]
        value = resolve_value(expr, self.env)
        if isinstance(value, ast.Name) and value.id in self.published_params:
            return self.published_params[value.id]
        if isinstance(value, ast.Call):
            terminal = call_terminal(value)
            if terminal in PUBLISHED_PATH_PRODUCERS:
                return terminal
        return None

    def staging_derivation(
        self, expr: Optional[ast.AST]
    ) -> Optional[ast.Call]:
        """The ``with_name``/``with_suffix`` call behind ``expr``, if any."""
        value = resolve_value(expr, self.env)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in STAGING_DERIVATIONS
        ):
            return value
        return None


@register
class AtomicPublishChecker(Checker):
    rule = "ATOM005"
    description = (
        "published spool/cache paths are written via stage-then-rename "
        "(tmp sibling + os.replace), with token read-back after lease steals"
    )

    # -- cross-file propagation -------------------------------------------

    def _published_params(
        self, project: Project
    ) -> Dict[FunctionKey, Dict[str, str]]:
        """``function -> {param name -> producer}`` for parameters that are
        handed a published path at some confidently-resolved call site.

        Cached on the project instance (one propagation pass per run).
        """
        cached = getattr(project, "_atom005_published_params", None)
        if cached is not None:
            return cached
        index, graph = engine_for(project)
        out: Dict[FunctionKey, Dict[str, str]] = {}
        for module in index.modules.values():
            scopes: List[ast.AST] = [module.source.tree]
            scopes.extend(info.node for info in module.functions.values())
            for scope in scopes:
                state = _ScopeState(scope, {})
                for node in iter_own_nodes(scope):
                    if not isinstance(node, ast.Call):
                        continue
                    caller = index.enclosing_function(module, node)
                    resolved = index.resolve_call(module, node, caller)
                    if resolved is None or resolved[1] == "unique":
                        continue
                    callee = resolved[0]
                    params = [
                        a.arg
                        for a in callee.node.args.args  # type: ignore[union-attr]
                    ]
                    offset = 1 if callee.class_name is not None else 0
                    for position, arg in enumerate(node.args):
                        producer = state.producer_of(arg)
                        if producer is None:
                            continue
                        slot = position + offset
                        if slot < len(params):
                            out.setdefault(callee.key, {})[
                                params[slot]
                            ] = producer
                    for keyword in node.keywords:
                        if keyword.arg is None:
                            continue
                        producer = state.producer_of(keyword.value)
                        if producer is not None and keyword.arg in params:
                            out.setdefault(callee.key, {})[
                                keyword.arg
                            ] = producer
        project._atom005_published_params = out  # type: ignore[attr-defined]
        return out

    # -- per-file check ----------------------------------------------------

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        index, _ = engine_for(project)
        module = index.module_for(source)
        propagated = self._published_params(project)
        findings: List[Finding] = []
        scopes: List[Tuple[ast.AST, Dict[str, str]]] = [(source.tree, {})]
        for info in module.functions.values():
            scopes.append((info.node, propagated.get(info.key, {})))
        critical = is_durability_critical(
            source.package, source.path.as_posix()
        )
        for scope, published_params in scopes:
            findings.extend(
                self._check_scope(source, scope, published_params, critical)
            )
        return findings

    def _check_scope(
        self,
        source: SourceFile,
        scope: ast.AST,
        published_params: Dict[str, str],
        critical: bool,
    ) -> Iterable[Finding]:
        state = _ScopeState(scope, published_params)
        nodes = [
            n
            for n in iter_own_nodes(scope)
            if isinstance(n, ast.Call)
        ]
        # Staged writes and their publication renames, keyed by tmp name.
        staged_writes: Dict[str, ast.Call] = {}
        replaces: Dict[str, ast.Call] = {}
        for node in nodes:
            sink = _sink_target(node)
            if sink is not None:
                target, call = sink
                producer = state.producer_of(target)
                if producer is not None:
                    yield self.finding(
                        source,
                        call,
                        f"direct write to the published path from "
                        f"{producer}(); stage to a tmp sibling "
                        "(path.with_name(...)) and publish it with "
                        "os.replace so readers never see a torn file",
                    )
                    continue
                if isinstance(target, ast.Name):
                    derivation = state.staging_derivation(target)
                    if derivation is not None:
                        if state.producer_of(derivation.func.value) is not None:  # type: ignore[union-attr]
                            staged_writes.setdefault(target.id, call)
                        continue  # staging writes are never torn-file risks
                if state.staging_derivation(target) is not None:
                    continue
                if critical:
                    yield self.finding(
                        source,
                        call,
                        "non-atomic write in a durability-critical scope; "
                        "stage to a tmp sibling and os.replace it into "
                        "place (or use write_json_atomic/write_text_atomic)",
                        severity="warning",
                    )
                continue
            self._record_replace(state, node, replaces)
        yield from self._check_staging(source, staged_writes, replaces)
        yield from self._check_lease_read_back(source, state, nodes)

    @staticmethod
    def _record_replace(
        state: _ScopeState, node: ast.Call, replaces: Dict[str, ast.Call]
    ) -> None:
        head = node.func
        # tmp.replace(dst) — only when the receiver is a known staging name,
        # so str.replace / dataclasses.replace never match.
        if (
            isinstance(head, ast.Attribute)
            and head.attr == "replace"
            and isinstance(head.value, ast.Name)
            and state.staging_derivation(head.value) is not None
        ):
            replaces.setdefault(head.value.id, node)
        # os.replace(tmp, dst)
        elif (
            isinstance(head, ast.Attribute)
            and head.attr == "replace"
            and isinstance(head.value, ast.Name)
            and head.value.id == "os"
            and node.args
            and isinstance(node.args[0], ast.Name)
        ):
            replaces.setdefault(node.args[0].id, node)

    def _check_staging(
        self,
        source: SourceFile,
        staged_writes: Dict[str, ast.Call],
        replaces: Dict[str, ast.Call],
    ) -> Iterable[Finding]:
        for name, write in staged_writes.items():
            publish = replaces.get(name)
            if publish is None:
                yield self.finding(
                    source,
                    write,
                    f"'{name}' stages a published path but is never renamed "
                    "into place; a crash here leaks the tmp and a reader "
                    "meanwhile sees the stale (or missing) destination — "
                    f"add {name}.replace(<published path>) after the write",
                )
            elif node_position(publish) < node_position(write):
                yield self.finding(
                    source,
                    publish,
                    f"'{name}' is renamed into place before its content is "
                    "written (rename-before-flush); readers race a torn "
                    "file — publish only after the staged write completes",
                )

    def _check_lease_read_back(
        self,
        source: SourceFile,
        state: _ScopeState,
        nodes: List[ast.Call],
    ) -> Iterable[Finding]:
        read_backs = [
            node_position(n)
            for n in nodes
            if call_terminal(n) in LEASE_READ_BACK_CALLS
        ]
        for node in nodes:
            if call_terminal(node) not in ATOMIC_WRITE_HELPERS:
                continue
            if not node.args:
                continue
            producer = state.producer_of(node.args[0])
            if producer not in LEASE_PATH_PRODUCERS:
                continue
            position = node_position(node)
            if not any(rb > position for rb in read_backs):
                yield self.finding(
                    source,
                    node,
                    "steal-rename of a lease file without a token "
                    "read-back; a racing stealer's rename can clobber this "
                    "one undetected — re-read the lease and compare tokens "
                    "before treating the claim as won",
                )
