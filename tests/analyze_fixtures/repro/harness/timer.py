"""A fixture stand-in for the harness stopwatch funnel (suffix-matched)."""

import time


class Stopwatch:
    def __init__(self):
        self.start = time.perf_counter()

    def elapsed_s(self):
        return time.perf_counter() - self.start
