"""Figure 10: undo vs redo logging for overflowed DRAM blocks (Section VI-D).

Paper shape: for volatile transactions the undo policy outperforms redo
(fast commit-mark commits and no read indirection beat redo's cheap aborts),
by 7.5% at low overflow rates and more as overflows grow.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import fig10, fig10_grid


def test_fig10(benchmark, quick, jobs, show):
    result = benchmark.pedantic(
        lambda: fig10(quick=quick, jobs=jobs), rounds=1, iterations=1
    )
    show(result)
    advantages = result.column("undo_advantage")
    # Undo wins at every footprint.
    assert all(adv > 0 for adv in advantages)
    # And the advantage is material (paper: 7.5% .. 44.7%).
    assert max(advantages) > 0.03


@pytest.mark.smoke
def test_fig10_smoke(smoke_point):
    """One tiny Fig. 10 point must still build and simulate end-to-end."""
    result = smoke_point(fig10_grid)
    assert result.committed_ops > 0
    assert result.verified
