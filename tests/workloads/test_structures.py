"""Correctness tests for the transactional data structures (raw context)."""

from __future__ import annotations

import random

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.runtime.txapi import RawContext
from repro.workloads.btree import TxBTree
from repro.workloads.hashmap import TxHashMap
from repro.workloads.rbtree import TxRBTree
from repro.workloads.skiplist import TxSkipList


@pytest.fixture
def env():
    system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
    return system.heap, RawContext(system.controller)


@pytest.mark.parametrize("kind", [MemoryKind.DRAM, MemoryKind.NVM])
class TestHashMap:
    def test_insert_get(self, env, kind):
        heap, ctx = env
        table = TxHashMap.create(heap, ctx, kind, nbuckets=16)
        assert table.insert(ctx, 1, 100)
        assert table.get(ctx, 1) == 100
        assert table.get(ctx, 2) is None

    def test_update_existing(self, env, kind):
        heap, ctx = env
        table = TxHashMap.create(heap, ctx, kind, nbuckets=16)
        table.insert(ctx, 1, 100)
        assert not table.insert(ctx, 1, 200)
        assert table.get(ctx, 1) == 200
        assert table.size(ctx) == 1

    def test_delete(self, env, kind):
        heap, ctx = env
        table = TxHashMap.create(heap, ctx, kind, nbuckets=4)
        for k in range(20):
            table.insert(ctx, k, k * 10)
        assert table.delete(ctx, 7)
        assert not table.delete(ctx, 7)
        assert table.get(ctx, 7) is None
        assert table.size(ctx) == 19
        assert table.check_integrity(ctx)

    def test_collision_chains(self, env, kind):
        heap, ctx = env
        table = TxHashMap.create(heap, ctx, kind, nbuckets=2)
        for k in range(50):
            table.insert(ctx, k, k)
        for k in range(50):
            assert table.get(ctx, k) == k
        assert table.check_integrity(ctx)

    def test_against_dict_model(self, env, kind):
        heap, ctx = env
        table = TxHashMap.create(heap, ctx, kind, nbuckets=8)
        model = {}
        rng = random.Random(1)
        for _ in range(300):
            op = rng.randrange(3)
            key = rng.randrange(40)
            if op == 0:
                table.insert(ctx, key, key * 3)
                model[key] = key * 3
            elif op == 1:
                assert table.delete(ctx, key) == (key in model)
                model.pop(key, None)
            else:
                assert table.get(ctx, key) == model.get(key)
        assert sorted(table.keys(ctx)) == sorted(model)
        assert table.check_integrity(ctx)


@pytest.mark.parametrize("kind", [MemoryKind.DRAM, MemoryKind.NVM])
class TestBTree:
    def test_sequential_inserts(self, env, kind):
        heap, ctx = env
        tree = TxBTree.create(heap, ctx, kind)
        for k in range(100):
            assert tree.insert(ctx, k, k + 1000)
        for k in range(100):
            assert tree.get(ctx, k) == k + 1000
        assert tree.keys(ctx) == list(range(100))
        assert tree.check_integrity(ctx)

    def test_random_inserts_and_updates(self, env, kind):
        heap, ctx = env
        tree = TxBTree.create(heap, ctx, kind)
        model = {}
        rng = random.Random(7)
        for _ in range(400):
            key = rng.randrange(150)
            value = rng.randrange(10_000)
            was_new = tree.insert(ctx, key, value)
            assert was_new == (key not in model)
            model[key] = value
        for key, value in model.items():
            assert tree.get(ctx, key) == value
        assert tree.keys(ctx) == sorted(model)
        assert tree.check_integrity(ctx)

    def test_scan_range(self, env, kind):
        heap, ctx = env
        tree = TxBTree.create(heap, ctx, kind)
        for k in range(0, 100, 2):
            tree.insert(ctx, k, k)
        pairs = tree.scan(ctx, 10, 20)
        assert pairs == [(10, 10), (12, 12), (14, 14), (16, 16),
                         (18, 18), (20, 20)]

    def test_get_missing(self, env, kind):
        heap, ctx = env
        tree = TxBTree.create(heap, ctx, kind)
        tree.insert(ctx, 5, 5)
        assert tree.get(ctx, 4) is None
        assert tree.get(ctx, 6) is None


@pytest.mark.parametrize("kind", [MemoryKind.DRAM, MemoryKind.NVM])
class TestRBTree:
    def test_sequential_inserts_stay_balanced(self, env, kind):
        heap, ctx = env
        tree = TxRBTree.create(heap, ctx, kind)
        for k in range(200):
            assert tree.insert(ctx, k, k)
        assert tree.keys(ctx) == list(range(200))
        assert tree.check_integrity(ctx)

    def test_random_against_model(self, env, kind):
        heap, ctx = env
        tree = TxRBTree.create(heap, ctx, kind)
        model = {}
        rng = random.Random(3)
        for _ in range(400):
            key = rng.randrange(120)
            value = rng.randrange(10_000)
            was_new = tree.insert(ctx, key, value)
            assert was_new == (key not in model)
            model[key] = value
        for key, value in model.items():
            assert tree.get(ctx, key) == value
        assert tree.keys(ctx) == sorted(model)
        assert tree.check_integrity(ctx)

    def test_reverse_order_inserts(self, env, kind):
        heap, ctx = env
        tree = TxRBTree.create(heap, ctx, kind)
        for k in reversed(range(100)):
            tree.insert(ctx, k, k)
        assert tree.keys(ctx) == list(range(100))
        assert tree.check_integrity(ctx)


@pytest.mark.parametrize("kind", [MemoryKind.DRAM, MemoryKind.NVM])
class TestSkipList:
    def test_insert_get(self, env, kind):
        heap, ctx = env
        slist = TxSkipList.create(heap, ctx, kind, seed=5)
        for k in range(100):
            assert slist.insert(ctx, k * 2, k)
        for k in range(100):
            assert slist.get(ctx, k * 2) == k
            assert slist.get(ctx, k * 2 + 1) is None
        assert slist.check_integrity(ctx)

    def test_update(self, env, kind):
        heap, ctx = env
        slist = TxSkipList.create(heap, ctx, kind, seed=5)
        slist.insert(ctx, 1, 10)
        assert not slist.insert(ctx, 1, 20)
        assert slist.get(ctx, 1) == 20

    def test_random_against_model(self, env, kind):
        heap, ctx = env
        slist = TxSkipList.create(heap, ctx, kind, seed=9)
        model = {}
        rng = random.Random(11)
        for _ in range(300):
            key = rng.randrange(100)
            value = rng.randrange(10_000)
            was_new = slist.insert(ctx, key, value)
            assert was_new == (key not in model)
            model[key] = value
        assert slist.keys(ctx) == sorted(model)
        for key, value in model.items():
            assert slist.get(ctx, key) == value
        assert slist.check_integrity(ctx)
