"""Serializability property: concurrent committed transactions must be
equivalent to some serial execution.

For commutative increment workloads, any serial execution yields the exact
total, so the check is equality.  For last-writer-wins registers, the final
value must be one that some committed transaction wrote.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind


def build_system(design, seed, cores=4):
    return System(
        MachineConfig.scaled(1 / 64, cores=cores),
        HTMConfig(design=design),
        seed=seed,
    )


@settings(max_examples=12, deadline=None)
@given(
    design=st.sampled_from(["uhtm", "ideal", "llc_bounded"]),
    seed=st.integers(min_value=0, max_value=10_000),
    threads=st.integers(min_value=2, max_value=4),
    increments=st.integers(min_value=5, max_value=20),
    cells=st.integers(min_value=1, max_value=4),
)
def test_no_lost_updates(design, seed, threads, increments, cells):
    """Counters incremented transactionally never lose an update."""
    system = build_system(design, seed)
    proc = system.process("p")
    addrs = [system.heap.alloc_words(1, MemoryKind.DRAM) for _ in range(cells)]

    def make_worker(index):
        def worker(api):
            rng = api.rng
            for _ in range(increments):
                target = addrs[rng.randrange(cells)]

                def work(tx, target=target):
                    value = tx.read_word(target)
                    yield
                    tx.write_word(target, value + 1)

                yield from api.run_transaction(work)

        return worker

    for i in range(threads):
        proc.thread(make_worker(i))
    system.run()
    total = sum(system.controller.dram.load(a) for a in addrs)
    assert total == threads * increments


@settings(max_examples=10, deadline=None)
@given(
    design=st.sampled_from(["uhtm", "ideal"]),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_atomic_pair_invariant(design, seed):
    """Two cells updated together always stay equal under concurrency —
    transactions never expose or persist half an update."""
    system = build_system(design, seed)
    proc = system.process("p")
    a = system.heap.alloc_words(1, MemoryKind.DRAM)
    b = system.heap.alloc_words(1, MemoryKind.NVM)
    violations = []

    def worker(api):
        for _ in range(10):
            def work(tx):
                x = tx.read_word(a)
                y = tx.read_word(b)
                if x != y:
                    violations.append((x, y))
                yield
                tx.write_word(a, x + 1)
                tx.write_word(b, y + 1)

            yield from api.run_transaction(work)

    for _ in range(3):
        proc.thread(worker)
    system.run()
    assert violations == []
    assert system.controller.dram.load(a) == system.controller.load_word(b) == 30


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_register_final_value_was_written_by_someone(seed):
    system = build_system("uhtm", seed)
    proc = system.process("p")
    addr = system.heap.alloc_words(1, MemoryKind.DRAM)
    written = set()

    def make_worker(index):
        def worker(api):
            for i in range(5):
                value = index * 1000 + i

                def work(tx, value=value):
                    tx.write_word(addr, value)
                    yield

                yield from api.run_transaction(work)
                written.add(value)

        return worker

    for i in range(3):
        proc.thread(make_worker(i))
    system.run()
    assert system.controller.dram.load(addr) in written
