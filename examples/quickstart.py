#!/usr/bin/env python3
"""Quickstart: durable transactions on a simulated hybrid-memory machine.

Builds a 4-core machine running the UHTM design, spawns four threads that
transactionally increment counters in DRAM *and* NVM, then demonstrates the
two headline guarantees:

* serializability — no increment is ever lost despite conflicts, and
* durability — the NVM counter survives a power failure via redo-log replay
  while the DRAM counter (volatile by definition) does not.

Run with:  python examples/quickstart.py
"""

from repro import HTMConfig, MachineConfig, MemoryKind, System

THREADS = 4
INCREMENTS_PER_THREAD = 50


def main() -> None:
    machine = MachineConfig.scaled(1 / 16, cores=4)
    system = System(machine, HTMConfig(design="uhtm"), seed=42)
    app = system.process("quickstart")

    # Allocate one volatile and one persistent counter.
    dram_counter = system.heap.alloc_words(1, MemoryKind.DRAM)
    nvm_counter = system.heap.alloc_words(1, MemoryKind.NVM)

    def worker(api):
        for _ in range(INCREMENTS_PER_THREAD):
            def transaction(tx):
                volatile = tx.read_word(dram_counter)
                persistent = tx.read_word(nvm_counter)
                yield  # a scheduling point: other threads may interleave
                tx.write_word(dram_counter, volatile + 1)
                tx.write_word(nvm_counter, persistent + 1)

            # Algorithm 1: speculative fast path, retries with backoff,
            # serialised fallback — all handled by run_transaction.
            yield from api.run_transaction(transaction)

    for _ in range(THREADS):
        app.thread(worker)

    elapsed_ns = system.run()
    expected = THREADS * INCREMENTS_PER_THREAD

    print("=== after the run ===")
    print(f"simulated time        : {elapsed_ns / 1e6:.3f} ms")
    print(f"committed transactions: {system.stats.counter('tx.commits')}")
    print(f"aborted attempts      : {system.stats.counter('tx.aborts')}"
          f"  {system.abort_breakdown()}")
    print(f"DRAM counter          : {system.controller.dram.load(dram_counter)}"
          f" (expected {expected})")
    print(f"NVM counter           : {system.controller.load_word(nvm_counter)}"
          f" (expected {expected})")
    assert system.controller.dram.load(dram_counter) == expected
    assert system.controller.load_word(nvm_counter) == expected

    print("\n=== power failure! ===")
    system.crash()
    report = system.recover()
    print(f"redo-log lines replayed: {report.replayed_lines}")
    print(f"DRAM counter after crash: "
          f"{system.controller.dram.load(dram_counter)} (volatile -> lost)")
    print(f"NVM counter after crash : "
          f"{system.controller.nvm.load(nvm_counter)} (durable -> intact)")
    assert system.controller.dram.load(dram_counter) == 0
    assert system.controller.nvm.load(nvm_counter) == expected
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
