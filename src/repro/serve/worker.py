"""A fleet worker: lease points, run them, publish into the shared cache.

One worker is one shard of the fleet (``--shard i/N``).  Its loop is a
single idempotent pass, repeated::

    for each campaign, oldest first (skipping cancelled ones):
        for each point of my shard, in submission order:
            already in the cache?   -> skip (this IS checkpoint/resume)
            marked failed?          -> skip
            lease claim lost?       -> skip (someone live is on it)
            run through execute_point(), publish via cache.put(),
            release the lease

Killing a worker at *any* instruction of that loop is recoverable:
unpublished work is recomputed (the lease left behind is stolen instantly
on the same host, or after the TTL elsewhere), a half-written cache entry
is impossible (atomic rename), and a lease surviving past its published
point is released by the next pass's skip path.

A point that raises :class:`~repro.harness.runner.ExperimentFailure` is
recorded under ``failures/`` with its label and spec hash and is not
retried (``repro serve retry`` clears the markers).  A fingerprint
mismatch between the job record and this worker's cache version stamp
aborts the point loudly — submitter/worker code-version skew must never
publish artifacts under the wrong key.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from ..harness.parallel import execute_point
from ..harness.runner import ExperimentFailure
from .clock import sleep
from .jobstore import JobRecord, ServeError
from .queue import DEFAULT_LEASE_TTL_S, JobQueue

#: Default seconds between spool scans when a pass finds nothing to run.
DEFAULT_POLL_S = 0.5


@dataclass
class WorkerStats:
    """What one worker did — the auditable side of checkpoint/resume."""

    executed: int = 0
    cache_skips: int = 0
    lease_skips: int = 0
    failed: int = 0
    elapsed_s: float = 0.0
    #: ``(campaign_id, index, display_label)`` per executed point.
    published: List[Tuple[str, int, str]] = field(default_factory=list)


class Worker:
    """One fleet member bound to a spool directory and a shard."""

    def __init__(
        self,
        spool: Union[str, Path],
        shard: Tuple[int, int] = (0, 1),
        name: Optional[str] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.queue = JobQueue(spool, lease_ttl_s=lease_ttl_s)
        self.cache = self.queue.cache
        self.shard = shard
        self.name = name or f"worker-{shard[0]}of{shard[1]}-pid{os.getpid()}"
        self.stats = WorkerStats()
        self._progress = progress

    def _say(self, message: str) -> None:
        if self._progress is not None:
            self._progress(f"[{self.name}] {message}")

    # -- one point ---------------------------------------------------------

    def _run_point(self, campaign_id: str, record: JobRecord) -> bool:
        """Lease, execute, publish, release.  True iff this worker ran it."""
        lease = self.queue.try_claim(campaign_id, record.index, self.name)
        if lease is None:
            self.stats.lease_skips += 1
            return False
        try:
            # Re-derive the fingerprint with *this* worker's code-version
            # stamp: a mismatch means the submitter ran different simulator
            # code, and publishing under its key would poison the cache.
            expected = self.cache.fingerprint(record.spec, record.label)
            if expected != record.fingerprint:
                message = (
                    "fingerprint mismatch (submitter/worker CACHE_VERSION "
                    f"skew?): record says {record.fingerprint[:12]}, this "
                    f"worker derives {expected[:12]}"
                )
                self.queue.record_failure(campaign_id, record.index, message)
                self.stats.failed += 1
                self._say(f"FAILED {campaign_id}[{record.index}]: {message}")
                return False
            try:
                result, elapsed_s = execute_point(record.point())
            except ExperimentFailure as exc:
                self.queue.record_failure(campaign_id, record.index, str(exc))
                self.stats.failed += 1
                self._say(f"FAILED {campaign_id}[{record.index}]: {exc}")
                return False
            self.cache.count_simulations(1)
            self.cache.put(record.spec, result, record.label)
            self.stats.executed += 1
            self.stats.elapsed_s += elapsed_s
            self.stats.published.append(
                (campaign_id, record.index, record.display_label)
            )
            self._say(
                f"done {campaign_id}[{record.index}] "
                f"{record.display_label} in {elapsed_s:.2f}s"
            )
            return True
        finally:
            self.queue.release(campaign_id, record.index)

    # -- passes ------------------------------------------------------------

    def run_once(self) -> int:
        """One spool pass; returns how many points this worker executed."""
        executed = 0
        for meta in self.queue.campaigns():
            for record in self.queue.runnable(meta.campaign_id, self.shard):
                # Re-probe: another worker may have published while this
                # pass was busy on earlier points.
                if self.cache.has_fingerprint(record.fingerprint):
                    self.stats.cache_skips += 1
                    continue
                if self._run_point(meta.campaign_id, record):
                    executed += 1
        return executed

    def _shard_settled(self) -> bool:
        """Every point of this worker's shard is published or failed."""
        for meta in self.queue.campaigns():
            if self.queue.cancelled(meta.campaign_id):
                continue
            for record in self.queue.shard_records(meta.campaign_id, self.shard):
                if self.cache.has_fingerprint(record.fingerprint):
                    continue
                if self.queue.failure(meta.campaign_id, record.index) is None:
                    return False
        return True

    def drain(
        self,
        poll_s: float = DEFAULT_POLL_S,
        timeout_s: Optional[float] = None,
    ) -> WorkerStats:
        """Run until this shard is settled (or ``timeout_s`` passes).

        Between passes the worker sleeps ``poll_s`` — the waiting case is a
        point of this shard leased to a still-live worker from an earlier
        fleet, which either publishes it or dies and gets stolen.
        """
        waited = 0.0
        while not self._shard_settled():
            if self.run_once() == 0:
                if timeout_s is not None and waited >= timeout_s:
                    raise ServeError(
                        f"{self.name}: shard not settled after {waited:.0f}s"
                    )
                sleep(poll_s)
                waited += poll_s
        return self.stats

    def run_forever(self, poll_s: float = DEFAULT_POLL_S) -> None:
        """Service loop: keep scanning for work until killed."""
        while True:
            if self.run_once() == 0:
                sleep(poll_s)

    def summary(self) -> str:
        stats = self.stats
        return (
            f"{self.name}: {stats.executed} simulated "
            f"({stats.elapsed_s:.1f}s sim wall), {stats.cache_skips} "
            f"cache-served, {stats.lease_skips} leased elsewhere, "
            f"{stats.failed} failed"
        )
