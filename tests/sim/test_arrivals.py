"""Tests for the open-loop arrival processes and the Zipf sampler."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sim.arrivals import ZipfSampler, bursty_arrivals, poisson_arrivals
from repro.sim.rng import RngStreams


def _rng(seed=7, name="arrivals"):
    return RngStreams(seed).stream(name)


class TestPoissonArrivals:
    def test_deterministic_for_a_seed(self):
        a = list(poisson_arrivals(_rng(), 100.0, 50_000.0))
        b = list(poisson_arrivals(_rng(), 100.0, 50_000.0))
        assert a == b
        assert a != list(poisson_arrivals(_rng(seed=8), 100.0, 50_000.0))

    def test_monotone_and_within_horizon(self):
        times = list(poisson_arrivals(_rng(), 100.0, 50_000.0))
        assert times == sorted(times)
        assert all(0.0 < t < 50_000.0 for t in times)

    def test_long_run_rate_matches_mean_gap(self):
        times = list(poisson_arrivals(_rng(), 100.0, 1_000_000.0))
        assert len(times) == pytest.approx(10_000, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigError):
            list(poisson_arrivals(_rng(), 0.0, 1000.0))


class TestBurstyArrivals:
    def test_deterministic_for_a_seed(self):
        kwargs = dict(on_ns=500.0, off_ns=500.0, burst_factor=2.0)
        a = list(bursty_arrivals(_rng(), 100.0, 50_000.0, **kwargs))
        b = list(bursty_arrivals(_rng(), 100.0, 50_000.0, **kwargs))
        assert a == b
        assert a

    def test_monotone_and_within_horizon(self):
        times = list(
            bursty_arrivals(
                _rng(), 100.0, 50_000.0,
                on_ns=500.0, off_ns=500.0, burst_factor=2.0,
            )
        )
        assert times == sorted(times)
        assert all(0.0 < t < 50_000.0 for t in times)

    def test_matched_long_run_rate(self):
        # burst_factor = (on + off) / on keeps the long-run rate equal to
        # the Poisson process at the same mean gap.
        times = list(
            bursty_arrivals(
                _rng(), 100.0, 1_000_000.0,
                on_ns=1000.0, off_ns=1000.0, burst_factor=2.0,
            )
        )
        assert len(times) == pytest.approx(10_000, rel=0.1)

    def test_bursts_are_denser_than_the_base_rate(self):
        # Within ON phases gaps average mean_gap / burst_factor, so the
        # median inter-arrival gap sits well below the base mean gap.
        times = list(
            bursty_arrivals(
                _rng(), 100.0, 1_000_000.0,
                on_ns=2000.0, off_ns=2000.0, burst_factor=4.0,
            )
        )
        gaps = sorted(
            b - a for a, b in zip(times, times[1:])
        )
        assert gaps[len(gaps) // 2] < 100.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            list(bursty_arrivals(_rng(), 100.0, 1000.0, on_ns=0.0, off_ns=1.0))
        with pytest.raises(ConfigError):
            list(
                bursty_arrivals(
                    _rng(), 100.0, 1000.0,
                    on_ns=1.0, off_ns=1.0, burst_factor=0.0,
                )
            )


class TestZipfSampler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            ZipfSampler(0, 0.9)
        with pytest.raises(ConfigError):
            ZipfSampler(8, -0.1)

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0)
        for rank in range(10):
            assert sampler.weight(rank) == pytest.approx(0.1)

    def test_skew_orders_the_ranks(self):
        sampler = ZipfSampler(64, 0.9)
        weights = [sampler.weight(rank) for rank in range(64)]
        assert weights == sorted(weights, reverse=True)
        assert weights[0] > 2 * weights[10]

    def test_hotter_theta_concentrates_the_head(self):
        assert ZipfSampler(64, 1.2).weight(0) > ZipfSampler(64, 0.6).weight(0)

    def test_sample_sequence_is_seed_stable(self):
        sampler = ZipfSampler(128, 0.9)
        a = [sampler.sample(_rng(name="keys")) for _ in range(1)]
        first = _rng(name="keys")
        second = _rng(name="keys")
        assert [sampler.sample(first) for _ in range(500)] == [
            sampler.sample(second) for _ in range(500)
        ]

    @given(
        keys=st.integers(min_value=1, max_value=512),
        theta=st.floats(min_value=0.0, max_value=3.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_samples_in_range_and_seed_stable(self, keys, theta, seed):
        sampler = ZipfSampler(keys, theta)
        draws = [
            sampler.sample(RngStreams(seed).stream("keys")) for _ in range(3)
        ]
        assert all(0 <= rank < keys for rank in draws)
        # The same named stream replays the same first draw every time.
        assert len(set(draws)) == 1
        # The distribution is normalized whatever the parameters.
        assert sum(sampler.weight(rank) for rank in range(keys)) == (
            pytest.approx(1.0)
        )