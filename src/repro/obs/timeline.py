"""Per-transaction timeline assembly from a captured event stream."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .events import (
    SLOWPATH_BEGIN,
    SLOWPATH_COMMIT,
    TX_ABORT,
    TX_BEGIN,
    TX_COMMIT,
    TraceEvent,
)


@dataclass
class TxTimeline:
    """Everything one transaction attempt did, in event order.

    Slow-path executions appear too (their pseudo transaction id from the
    shared allocator), with outcome ``"slowpath"``.
    """

    tx_id: int
    thread_id: Optional[int] = None
    begin_ns: float = 0.0
    end_ns: float = 0.0
    #: "committed", "aborted", "slowpath", or None while still in flight.
    outcome: Optional[str] = None
    abort_reason: Optional[str] = None
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def duration_ns(self) -> float:
        return max(0.0, self.end_ns - self.begin_ns)


def build_timelines(events: Iterable[TraceEvent]) -> Dict[int, TxTimeline]:
    """Group an event stream by transaction id, in first-seen order.

    Transaction ids are allocated once and never reused (``TxIdAllocator``),
    so one id is one attempt.  Events without a transaction id (thread
    scheduling, raw LLC evictions) are not part of any timeline.
    """
    timelines: Dict[int, TxTimeline] = {}
    for event in events:
        if event.tx_id is None:
            continue
        timeline = timelines.get(event.tx_id)
        if timeline is None:
            timeline = TxTimeline(tx_id=event.tx_id, begin_ns=event.ts_ns)
            timelines[event.tx_id] = timeline
        timeline.events.append(event)
        timeline.end_ns = max(timeline.end_ns, event.ts_ns)
        if event.thread_id is not None:
            timeline.thread_id = event.thread_id
        if event.kind in (TX_BEGIN, SLOWPATH_BEGIN):
            timeline.begin_ns = event.ts_ns
        elif event.kind == TX_COMMIT:
            timeline.outcome = "committed"
        elif event.kind == TX_ABORT:
            timeline.outcome = "aborted"
            timeline.abort_reason = event.get("reason")
        elif event.kind == SLOWPATH_COMMIT:
            timeline.outcome = "slowpath"
    return timelines
