"""Tests for the statistics registry."""

from __future__ import annotations

from repro.sim.stats import StatsRegistry, decompose, ratio


class TestCounters:
    def test_incr_and_read(self):
        stats = StatsRegistry()
        stats.incr("tx.commits")
        stats.incr("tx.commits", 4)
        assert stats.counter("tx.commits") == 5

    def test_missing_counter_is_zero(self):
        assert StatsRegistry().counter("nope") == 0

    def test_prefix_query(self):
        stats = StatsRegistry()
        stats.incr("tx.aborts.capacity", 2)
        stats.incr("tx.aborts.false_positive", 3)
        stats.incr("tx.commits", 1)
        grouped = stats.counters_with_prefix("tx.aborts.")
        assert grouped == {
            "tx.aborts.capacity": 2,
            "tx.aborts.false_positive": 3,
        }

    def test_snapshot_is_a_copy(self):
        stats = StatsRegistry()
        stats.incr("x")
        snap = stats.snapshot()
        stats.incr("x")
        assert snap["x"] == 1


class TestSamples:
    def test_record_and_mean(self):
        stats = StatsRegistry()
        for v in (1.0, 2.0, 3.0):
            stats.record("latency", v)
        assert stats.mean("latency") == 2.0
        assert stats.samples("latency") == [1.0, 2.0, 3.0]

    def test_mean_of_empty_is_zero(self):
        assert StatsRegistry().mean("nothing") == 0.0

    def test_samples_returns_copy(self):
        stats = StatsRegistry()
        stats.record("s", 1.0)
        stats.samples("s").append(99.0)
        assert stats.samples("s") == [1.0]


class TestMerge:
    def test_merge_counters_and_samples(self):
        a = StatsRegistry()
        b = StatsRegistry()
        a.incr("n", 1)
        b.incr("n", 2)
        b.incr("m", 5)
        a.record("s", 1.0)
        b.record("s", 3.0)
        a.merge(b)
        assert a.counter("n") == 3
        assert a.counter("m") == 5
        assert a.mean("s") == 2.0


class TestHelpers:
    def test_ratio(self):
        assert ratio(1, 2) == 0.5
        assert ratio(0, 0) == 0.0
        assert ratio(5, 0) == 0.0

    def test_decompose(self):
        parts = decompose({"a": 1, "b": 3}, 4)
        assert parts == {"a": 0.25, "b": 0.75}

    def test_decompose_zero_total(self):
        assert decompose({"a": 1}, 0) == {"a": 0.0}
