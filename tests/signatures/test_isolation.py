"""Tests for conflict-domain signature isolation."""

from __future__ import annotations

import pytest

from repro.params import SignatureConfig
from repro.signatures.addresssig import SignaturePair
from repro.signatures.isolation import ConflictDomainRegistry, GLOBAL_DOMAIN


def make_sig():
    return SignaturePair(SignatureConfig(bits=512))


class TestIsolationEnabled:
    def test_same_domain_checked(self):
        registry = ConflictDomainRegistry(isolation_enabled=True)
        sig = make_sig()
        registry.register(1, domain_id=7, signature=sig)
        found = dict(registry.signatures_to_check(7))
        assert found == {1: sig}

    def test_other_domain_not_checked(self):
        """The optimisation: cross-process traffic skips the signatures."""
        registry = ConflictDomainRegistry(isolation_enabled=True)
        registry.register(1, domain_id=7, signature=make_sig())
        assert dict(registry.signatures_to_check(8)) == {}

    def test_exclusion_of_requester(self):
        registry = ConflictDomainRegistry(isolation_enabled=True)
        registry.register(1, 7, make_sig())
        registry.register(2, 7, make_sig())
        found = dict(registry.signatures_to_check(7, exclude_tx=1))
        assert set(found) == {2}


class TestIsolationDisabled:
    def test_all_domains_merge(self):
        registry = ConflictDomainRegistry(isolation_enabled=False)
        registry.register(1, domain_id=7, signature=make_sig())
        registry.register(2, domain_id=8, signature=make_sig())
        found = dict(registry.signatures_to_check(9))
        assert set(found) == {1, 2}

    def test_effective_domain_is_global(self):
        registry = ConflictDomainRegistry(isolation_enabled=False)
        assert registry.effective_domain(42) == GLOBAL_DOMAIN


class TestLifecycle:
    def test_unregister(self):
        registry = ConflictDomainRegistry(True)
        registry.register(1, 7, make_sig())
        registry.unregister(1)
        assert dict(registry.signatures_to_check(7)) == {}
        assert len(registry) == 0

    def test_unregister_unknown_is_noop(self):
        ConflictDomainRegistry(True).unregister(99)

    def test_active_tx_ids(self):
        registry = ConflictDomainRegistry(True)
        registry.register(1, 7, make_sig())
        registry.register(2, 8, make_sig())
        assert registry.active_tx_ids() == {1, 2}

    def test_domains_listing(self):
        registry = ConflictDomainRegistry(True)
        registry.register(1, 7, make_sig())
        registry.register(2, 8, make_sig())
        assert registry.domains() == [7, 8]
        registry.unregister(1)
        assert registry.domains() == [8]
