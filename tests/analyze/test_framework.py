"""The checker framework: registry, suppressions, reporters, CLI plumbing."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import registered_checkers, render_json, render_text, run_analysis
from repro.analyze.cli import _merge_allow_marker, main as lint_main
from repro.analyze.layers import assert_acyclic

FIXTURES = Path(__file__).parent.parent / "analyze_fixtures"


class TestRegistry:
    def test_all_rules_registered(self):
        assert {
            "DET001",
            "LAY002",
            "HOOK003",
            "FSM004",
            "ATOM005",
            "PKL006",
            "CLK008",
            "TRC009",
        } <= set(registered_checkers())

    def test_rules_filter_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            run_analysis([FIXTURES / "det001_good.py"], rules=["NOPE999"])

    def test_layer_dag_is_acyclic(self):
        assert_acyclic()


class TestSuppressions:
    def test_line_suppression_hides_only_its_line(self):
        report = run_analysis([FIXTURES / "suppressed.py"], rules=["DET001"])
        assert report.suppressed == 1
        assert [f.message for f in report.findings] == [
            "'import secrets' bypasses the seeded RngStreams; draw from a "
            "named stream of repro.sim.rng instead"
        ]

    def test_file_suppression_hides_everything(self):
        report = run_analysis([FIXTURES / "suppressed_file.py"], rules=["DET001"])
        assert report.findings == []
        assert report.suppressed >= 2


class TestReporters:
    def test_text_reporter_lists_locations(self):
        report = run_analysis([FIXTURES / "det001_bad.py"], rules=["DET001"])
        text = render_text(report)
        assert "det001_bad.py" in text
        assert "DET001" in text
        assert "finding(s)" in text

    def test_json_reporter_round_trips(self):
        report = run_analysis([FIXTURES / "det001_bad.py"], rules=["DET001"])
        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert all(
            {"rule", "path", "line", "col", "message"} <= set(f)
            for f in payload["findings"]
        )

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        report = run_analysis([bad])
        assert [f.rule for f in report.findings] == ["PARSE"]


class TestCli:
    def test_exit_zero_on_clean_file(self, capsys):
        assert lint_main([str(FIXTURES / "det001_good.py")]) == 0

    def test_exit_one_on_each_bad_fixture(self, capsys):
        for name in (
            "det001_bad.py",
            "lay002_bad.py",
            "hook003_bad.py",
            "fsm004_bad.py",
            "fsm004_unreachable.py",
            "fsm004_bad_directory.py",
            "repro/htm/import_bad.py",
            "atom005_bad.py",
            "pkl006_bad.py",
            "trc009_bad.py",
            "repro/htm/clock_bad.py",
        ):
            assert lint_main([str(FIXTURES / name)]) == 1, name

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/a/path.py"]) == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        assert (
            lint_main(["--rules", "NOPE999", str(FIXTURES / "det001_good.py")])
            == 2
        )

    def test_json_flag_emits_json(self, capsys):
        lint_main(["--json", str(FIXTURES / "det001_good.py")])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "DET001",
            "LAY002",
            "HOOK003",
            "FSM004",
            "ATOM005",
            "PKL006",
            "CLK008",
            "TRC009",
        ):
            assert rule in out

    def test_fail_on_error_lets_warnings_pass(self, capsys):
        blanket = str(FIXTURES / "repro" / "serve" / "blanket_bad.py")
        assert lint_main(["--rules", "ATOM005", blanket]) == 1
        assert (
            lint_main(["--rules", "ATOM005", "--fail-on", "error", blanket])
            == 0
        )

    def test_sarif_export(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        lint_main(
            [
                "--rules",
                "DET001",
                "--sarif",
                str(out),
                str(FIXTURES / "det001_bad.py"),
            ]
        )
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert "DET001" in rule_ids
        assert run["results"]
        result = run["results"][0]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startColumn"] >= 1

    def test_fix_suppress_silences_a_bad_file(self, tmp_path, capsys):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            (FIXTURES / "det001_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert lint_main(["--rules", "DET001", str(scratch)]) == 1
        assert (
            lint_main(["--rules", "DET001", "--fix-suppress", str(scratch)]) == 1
        )
        assert lint_main(["--rules", "DET001", str(scratch)]) == 0
        assert "repro: allow[DET001]" in scratch.read_text(encoding="utf-8")


class TestFixSuppressIdempotency:
    def test_second_pass_rewrites_nothing(self, tmp_path, capsys):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            (FIXTURES / "det001_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        lint_main(["--rules", "DET001", "--fix-suppress", str(scratch)])
        once = scratch.read_text(encoding="utf-8")
        # A second pass (running ALL rules) must merge into the existing
        # markers, never stack a duplicate after them.
        lint_main(["--fix-suppress", str(scratch)])
        twice = scratch.read_text(encoding="utf-8")
        for line in twice.splitlines():
            assert line.count("repro: allow[") <= 1, line
        lint_main(["--fix-suppress", str(scratch)])
        assert scratch.read_text(encoding="utf-8") == twice

    def test_marker_merge_unions_rule_ids(self):
        line = "x = 1  # repro: allow[DET001]\n"
        merged = _merge_allow_marker(line, {"ATOM005", "DET001"})
        assert merged == "x = 1  # repro: allow[ATOM005,DET001]\n"
        # Merging again with the same rules is a no-op.
        assert _merge_allow_marker(merged, {"ATOM005"}) == merged


class TestChangedScope:
    def _git(self, *args, cwd):
        import subprocess

        subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@t",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@t",
                "HOME": str(cwd),
                "PATH": "/usr/bin:/bin:/usr/local/bin",
            },
        )

    def test_changed_reports_only_new_files(self, tmp_path, monkeypatch, capsys):
        bad = (FIXTURES / "det001_bad.py").read_text(encoding="utf-8")
        self._git("init", "-b", "main", cwd=tmp_path)
        committed = tmp_path / "old_bad.py"
        committed.write_text(bad, encoding="utf-8")
        self._git("add", "old_bad.py", cwd=tmp_path)
        self._git("commit", "-m", "seed", cwd=tmp_path)
        fresh = tmp_path / "new_bad.py"
        fresh.write_text(bad, encoding="utf-8")

        monkeypatch.chdir(tmp_path)
        code = lint_main(
            ["--rules", "DET001", "--changed", "main", "--json", str(tmp_path)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        paths = {f["path"] for f in payload["findings"]}
        assert all(p.endswith("new_bad.py") for p in paths), paths
        assert paths  # the untracked file IS reported

    def test_changed_without_git_falls_back_to_full_lint(
        self, tmp_path, monkeypatch, capsys
    ):
        scratch = tmp_path / "scratch.py"
        scratch.write_text(
            (FIXTURES / "det001_bad.py").read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nope"))
        code = lint_main(
            ["--rules", "DET001", "--changed", "--json", str(scratch)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "falling back to a full lint" in captured.err
        assert json.loads(captured.out)["findings"]
