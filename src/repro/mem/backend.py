"""Word-addressed backing stores for DRAM and NVM.

A :class:`BackingStore` holds the *globally visible* contents of one medium
as a sparse word-address → value map, and knows its read/write latencies.
Unwritten words read as zero, like zero-initialised physical memory.

The NVM store survives a simulated crash; the DRAM store is wiped.  Values
are opaque Python ints (the heap stores 64-bit words: keys, payload words,
and pointers encoded as addresses).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ..errors import AddressError
from ..params import LatencyConfig
from .address import MemoryKind, word_of


class BackingStore:
    """The contents and timing of one physical memory medium."""

    def __init__(self, kind: MemoryKind, latency: LatencyConfig) -> None:
        self.kind = kind
        self._words: Dict[int, int] = {}
        if kind is MemoryKind.DRAM:
            self._read_ns = latency.dram_ns
            self._write_ns = latency.dram_ns
        else:
            self._read_ns = latency.nvm_read_ns
            self._write_ns = latency.nvm_write_ns

    @property
    def read_ns(self) -> float:
        return self._read_ns

    @property
    def write_ns(self) -> float:
        return self._write_ns

    def load(self, addr: int) -> int:
        """Read the 64-bit word containing ``addr``."""
        return self._words.get(word_of(addr), 0)

    def store(self, addr: int, value: int) -> None:
        """Write the 64-bit word containing ``addr``."""
        if not isinstance(value, int):
            raise AddressError(f"stores take int values, got {type(value).__name__}")
        self._words[word_of(addr)] = value

    def words(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (word address, value) pairs that were written."""
        return iter(self._words.items())

    def word_count(self) -> int:
        return len(self._words)

    def wipe(self) -> None:
        """Lose all contents (power failure on a volatile medium)."""
        self._words.clear()

    def clone_contents(self) -> Dict[int, int]:
        """Snapshot contents (used by recovery tests as ground truth)."""
        return dict(self._words)
