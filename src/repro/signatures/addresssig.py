"""Per-transaction read/write address signatures.

"Each transaction has separate read- and write-signature" (Section IV-D).
Alongside the Bloom filters we keep *exact* shadow sets of the inserted line
addresses.  The hardware has no such sets — they exist purely so the harness
can label each signature hit as a true conflict or a false positive when
decomposing abort causes for Figure 7, and so the Ideal design can detect
conflicts perfectly.
"""

from __future__ import annotations

from typing import Optional, Set

from ..params import SignatureConfig
from .bloom import BankedBloomFilter, BloomFilter
from .hashing import HashFamily, shared_multiplicative


class SignaturePair:
    """Read and write signatures for one transaction (or core)."""

    def __init__(
        self,
        config: SignatureConfig,
        scale: float = 1.0,
        family: Optional[HashFamily] = None,
        kit=None,
    ) -> None:
        # Families are shared per (functions, buckets, seed): one transaction
        # begins per retry attempt, and re-deriving multipliers (plus a cold
        # hash memo) each time was a measurable share of the begin path.
        #
        # ``kit`` is a duck-typed engine kit (see :mod:`repro.kernels`)
        # selecting the filter implementation classes; None keeps the scalar
        # classes so this layer never imports the kernels package.
        flat_cls = BloomFilter if kit is None else kit.bloom_cls
        banked_cls = BankedBloomFilter if kit is None else kit.banked_bloom_cls
        bits = config.effective_bits(scale)
        if config.banked:
            bits -= bits % config.hash_functions or 0
            bits = max(config.hash_functions, bits)
            bank_bits = bits // config.hash_functions
            self.read_filter = banked_cls(
                bits,
                config.hash_functions,
                family
                or shared_multiplicative(
                    config.hash_functions, bank_bits, seed=0x5EED
                ),
            )
            self.write_filter = banked_cls(
                bits,
                config.hash_functions,
                family
                or shared_multiplicative(
                    config.hash_functions, bank_bits, seed=0xC0FFEE
                ),
            )
        else:
            if family is not None:
                read_family = write_family = family
            else:
                read_family = shared_multiplicative(
                    config.hash_functions, bits, seed=0x5EED
                )
                write_family = shared_multiplicative(
                    config.hash_functions, bits, seed=0xC0FFEE
                )
            self.read_filter = flat_cls(
                bits, config.hash_functions, read_family
            )
            self.write_filter = flat_cls(
                bits, config.hash_functions, write_family
            )
        #: Ground-truth shadow sets (accounting / Ideal design only).
        self.exact_read: Set[int] = set()
        self.exact_write: Set[int] = set()

    # -- inserts -------------------------------------------------------------

    def add_read(self, line_addr: int) -> None:
        self.read_filter.insert(line_addr)
        self.exact_read.add(line_addr)

    def add_write(self, line_addr: int) -> None:
        self.write_filter.insert(line_addr)
        self.exact_write.add(line_addr)

    # -- queries -------------------------------------------------------------

    def read_may_contain(self, line_addr: int) -> bool:
        return self.read_filter.maybe_contains(line_addr)

    def write_may_contain(self, line_addr: int) -> bool:
        return self.write_filter.maybe_contains(line_addr)

    def conflicts_with_access(self, line_addr: int, is_write: bool) -> bool:
        """Would this signature flag the given incoming access?

        A read of the line conflicts with our *writes*; a write conflicts
        with our writes **or** reads (RAW / WAW / WAR).
        """
        if self.write_may_contain(line_addr):
            return True
        if is_write and self.read_may_contain(line_addr):
            return True
        return False

    def truly_conflicts_with_access(self, line_addr: int, is_write: bool) -> bool:
        """Ground truth for the same question, from the shadow sets."""
        if line_addr in self.exact_write:
            return True
        if is_write and line_addr in self.exact_read:
            return True
        return False

    def is_empty(self) -> bool:
        return not self.exact_read and not self.exact_write

    def clear(self) -> None:
        self.read_filter.clear()
        self.write_filter.clear()
        self.exact_read.clear()
        self.exact_write.clear()

    @property
    def footprint_lines(self) -> int:
        return len(self.exact_read | self.exact_write)
