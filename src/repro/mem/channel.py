"""Bandwidth-limited memory channels (optional queuing model).

By default every off-chip access costs its Table III latency independently —
infinite bandwidth.  With ``MemoryConfig.model_bandwidth`` enabled, each
medium gets a :class:`MemoryChannel` whose service slots are finite: a
request arriving while the channel is busy queues behind it, so bursts (a
co-runner's streaming sweep, a commit flushing hundreds of lines) see
growing latency exactly as a saturated DDR/NVDIMM channel does.

The model is the classic busy-until scalar per channel: service time is
``line transfer = latency.line_transfer_ns`` (bandwidth term) while the
device latency itself still overlaps across banks.  Deterministic and
O(1) per access.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChannelStats:
    requests: int = 0
    queued_ns_total: float = 0.0

    @property
    def mean_queue_ns(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.queued_ns_total / self.requests


class MemoryChannel:
    """One medium's command/data bus with a finite service rate."""

    def __init__(self, name: str, service_ns: float) -> None:
        self.name = name
        #: Time the channel occupies per line transfer.
        self.service_ns = service_ns
        self._busy_until_ns = 0.0
        self.stats = ChannelStats()

    def request(self, now_ns: float) -> float:
        """Issue a line transfer at ``now_ns``; returns queueing delay.

        The caller adds the returned delay (possibly zero) on top of the
        device latency.  The channel is then busy for ``service_ns`` after
        the request's start-of-service.
        """
        start = max(now_ns, self._busy_until_ns)
        delay = start - now_ns
        self._busy_until_ns = start + self.service_ns
        self.stats.requests += 1
        self.stats.queued_ns_total += delay
        return delay

    @property
    def busy_until_ns(self) -> float:
        return self._busy_until_ns

    def utilisation(self, elapsed_ns: float) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.stats.requests * self.service_ns / elapsed_ns)
