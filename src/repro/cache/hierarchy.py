"""The two-level inclusive cache hierarchy (Table III).

Private L1 data caches per core sit under one shared LLC.  The hierarchy is
inclusive: installing in the L1 requires LLC residency, and an LLC eviction
back-invalidates every L1 copy.  The HTM design hooks two callbacks:

* ``on_l1_evict(core_id, meta)`` — a transactionally written line left a
  private cache; DHTM-style designs append it to the overflow list so commit
  can locate the write-set in the LLC without scanning.
* ``on_llc_evict(meta, directory_entry)`` — a line left the on-chip domain;
  the design migrates its transactional tracking (capacity abort for bounded
  designs, signature/exact-set insertion for unbounded ones) and, for
  written lines, moves its speculative data off-chip (undo log + in-place
  for DRAM, DRAM-cache buffering for NVM).

Data values are *not* stored here: committed values live in the backing
stores, speculative values in per-transaction write buffers.  Dirty bits
exist for write-back traffic accounting only.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple, Optional, Set

from ..mem.controller import MemoryController
from ..params import MachineConfig
from .coherence import CoherenceRequest, MesiState, next_state_for_holder
from .directory import Directory, DirectoryEntry
from .setassoc import CacheLineMeta, SetAssociativeArray

L1EvictCallback = Callable[[int, CacheLineMeta], None]
LLCEvictCallback = Callable[[CacheLineMeta, Optional[DirectoryEntry]], None]


class AccessResult(NamedTuple):
    """Timing and path information for one memory access.

    A named tuple rather than a frozen dataclass: one is allocated per
    simulated memory operation, and tuple construction is several times
    cheaper than ``object.__setattr__``-based frozen-dataclass init.
    """

    latency_ns: float
    #: "l1", "llc", or "mem" — where the request was satisfied.
    level: str

    @property
    def llc_miss(self) -> bool:
        return self.level == "mem"


class CacheHierarchy:
    """Per-core L1s + shared inclusive LLC + transactional directory."""

    def __init__(
        self,
        machine: MachineConfig,
        controller: MemoryController,
        kit=None,
    ) -> None:
        self.machine = machine
        self.controller = controller
        # ``kit`` is a duck-typed engine kit (see :mod:`repro.kernels`)
        # supplying the tag-array and latency-table classes; None keeps the
        # scalar defaults so this layer never imports the kernels package.
        array_cls = SetAssociativeArray if kit is None else kit.setassoc_cls
        self.l1s = [
            array_cls(machine.l1, f"l1[{core}]")
            for core in range(machine.cores)
        ]
        self.llc = array_cls(machine.llc, "llc")
        self.directory = Directory()
        # Hot-path constants: LatencyConfig is frozen, so the hit latencies
        # can be summed once instead of per access.  The engine kit's latency
        # table precomputes the same two constants with the same addition
        # order, so both paths yield bit-identical floats.
        latency = machine.latency
        if kit is None:
            self.latency_table = None
            self._l1_hit_ns = latency.l1_ns
            self._llc_hit_ns = latency.l1_ns + latency.llc_ns
        else:
            self.latency_table = kit.latency_cls(latency)
            self._l1_hit_ns = self.latency_table.l1_hit_ns
            self._llc_hit_ns = self.latency_table.llc_hit_ns
        #: Which cores' L1s hold each line (avoids probing all L1s).
        self.l1_holders: Dict[int, Set[int]] = {}
        self.on_l1_evict: Optional[L1EvictCallback] = None
        self.on_llc_evict: Optional[LLCEvictCallback] = None
        self.writebacks = 0
        #: Optional event tracer (see :mod:`repro.obs`): transactional LLC
        #: evictions are emitted as ``llc.evict`` events when attached.
        self.tracer = None

    # -- the demand access path -----------------------------------------------

    def would_miss_llc(self, core_id: int, line_addr: int) -> bool:
        """Would an access by ``core_id`` go to memory right now?

        Used to run off-chip conflict checks *before* the fill: a request
        that loses its conflict check is nacked and must not install the
        line (otherwise later requests would hit the cache and skip the
        check — reading uncommitted in-place data).
        """
        if self.l1s[core_id].peek(line_addr) is not None:
            return False
        return self.llc.peek(line_addr) is None

    def access(
        self,
        core_id: int,
        line_addr: int,
        is_write: bool,
        tx_id: Optional[int] = None,
        now_ns: float = 0.0,
    ) -> AccessResult:
        """Walk L1 → LLC → memory for one line-granularity access.

        Transactional bookkeeping (directory Tx fields, signatures, write
        buffers) is the HTM design's job; this method only moves tags and
        reports timing.  Writes invalidate other cores' L1 copies (GetM).
        ``now_ns`` (the requester's clock) feeds the optional bandwidth
        model's channel queueing.

        Coherence resolution (the former ``_finish_access``) is inlined at
        the tail: it runs exactly once per simulated memory operation, and
        the method call was measurable.
        """
        l1 = self.l1s[core_id]
        l1_meta = l1.lookup(line_addr)
        if l1_meta is not None:
            latency = self._l1_hit_ns
            level = "l1"
        else:
            latency = self._llc_hit_ns
            if self.llc.lookup(line_addr) is not None:
                level = "llc"
            else:
                latency += self.controller.demand_access_latency(
                    line_addr, now_ns + latency
                )
                # The LLC probe above already missed, so fill unconditionally.
                _, llc_victims = self.llc.fill(line_addr)
                for victim in llc_victims:
                    self.handle_llc_eviction(victim)
                level = "mem"
            l1_meta = self.fill_l1_after_miss(l1, core_id, line_addr)
        if is_write:
            # GetM: invalidate every other copy; this copy goes to M (a
            # sole E holder upgrades silently).
            self.invalidate_other_l1s(core_id, line_addr)
            l1_meta.mesi = MesiState.MODIFIED
            l1_meta.dirty = True
            if tx_id is not None:
                l1_meta.tx_writer = tx_id
        else:
            # GetS: downgrade any M/E holder; requester takes S if the line
            # is shared, E if it is the only copy.
            holders = self.l1_holders.get(line_addr)
            shared = False
            if holders:
                l1s = self.l1s
                for other in holders:
                    if other == core_id:
                        continue
                    shared = True
                    other_meta = l1s[other].peek(line_addr)
                    if other_meta is not None:
                        other_meta.mesi = next_state_for_holder(
                            CoherenceRequest.GET_S, other_meta.mesi
                        )
            if shared:
                l1_meta.mesi = MesiState.SHARED
            elif l1_meta.mesi is not MesiState.MODIFIED:
                l1_meta.mesi = MesiState.EXCLUSIVE
            if tx_id is not None:
                readers = l1_meta.tx_readers
                if readers is None:
                    l1_meta.tx_readers = {tx_id}
                else:
                    readers.add(tx_id)
        return AccessResult(latency, level)

    # -- fills and evictions -----------------------------------------------------

    def fill_l1_after_miss(
        self, l1: SetAssociativeArray, core_id: int, line_addr: int
    ) -> CacheLineMeta:
        """Install a line whose L1 probe already missed this access.

        The access path probes the L1 first and LLC evictions only ever
        *remove* L1 lines, so the residency re-check the old ``_fill_l1``
        did here was always a miss — it is omitted.
        """
        meta, victims = l1.fill(line_addr)
        holders = self.l1_holders.get(line_addr)
        if holders is None:
            self.l1_holders[line_addr] = {core_id}
        else:
            holders.add(core_id)
        for victim in victims:
            self.handle_l1_eviction(core_id, victim)
        return meta

    def handle_l1_eviction(self, core_id: int, victim: CacheLineMeta) -> None:
        holders = self.l1_holders.get(victim.line_addr)
        if holders is not None:
            holders.discard(core_id)
            if not holders:
                del self.l1_holders[victim.line_addr]
        # Inclusive hierarchy: the line is still in the LLC; propagate the
        # dirty bit and transactional writer marker down a level.
        llc_meta = self.llc.peek(victim.line_addr)
        if llc_meta is not None:
            llc_meta.dirty = llc_meta.dirty or victim.dirty
            if victim.tx_writer is not None:
                llc_meta.tx_writer = victim.tx_writer
            if victim.tx_readers:
                readers = llc_meta.tx_readers
                if readers is None:
                    llc_meta.tx_readers = set(victim.tx_readers)
                else:
                    readers.update(victim.tx_readers)
        if victim.tx_writer is not None and self.on_l1_evict is not None:
            self.on_l1_evict(core_id, victim)

    def handle_llc_eviction(self, victim: CacheLineMeta) -> None:
        # Back-invalidate L1 copies, folding their freshest state in.
        holders = self.l1_holders.pop(victim.line_addr, None)
        if holders:
            for core_id in holders:
                l1_meta = self.l1s[core_id].remove(victim.line_addr)
                if l1_meta is not None:
                    victim.dirty = victim.dirty or l1_meta.dirty
                    if l1_meta.tx_writer is not None:
                        victim.tx_writer = l1_meta.tx_writer
                    if l1_meta.tx_readers:
                        readers = victim.tx_readers
                        if readers is None:
                            victim.tx_readers = set(l1_meta.tx_readers)
                        else:
                            readers.update(l1_meta.tx_readers)
        entry = self.directory.evict_line(victim.line_addr)
        if victim.dirty and victim.tx_writer is None:
            # Non-speculative dirty data: the backing store already holds
            # the values (non-transactional stores write through); count the
            # write-back for bandwidth accounting only.
            self.writebacks += 1
        if victim.tx_writer is not None or victim.tx_readers or entry is not None:
            if self.tracer is not None:
                readers = set(victim.tx_readers or ())
                if entry is not None:
                    readers.update(entry.tx_sharers)
                self.tracer.emit(
                    "llc.evict",
                    line_addr=victim.line_addr,
                    writer=victim.tx_writer,
                    readers=len(readers),
                )
            if self.on_llc_evict is not None:
                self.on_llc_evict(victim, entry)

    def invalidate_other_l1s(self, core_id: int, line_addr: int) -> None:
        holders = self.l1_holders.get(line_addr)
        if not holders:
            return
        if core_id in holders:
            if len(holders) > 1:
                l1s = self.l1s
                for other in holders:
                    if other != core_id:
                        l1s[other].remove(line_addr)
                holders.clear()
                holders.add(core_id)
        else:
            l1s = self.l1s
            for other in holders:
                l1s[other].remove(line_addr)
            del self.l1_holders[line_addr]

    def flush_private_cache(self, core_id: int) -> int:
        """Flush one core's L1 into the LLC (context switch, Section IV-E).

        "UHTM flushes modified data of both DRAM and NVM in the private
        cache to the LLC on context switch.  Later, UHTM correctly locates
        these blocks in the LLC without asking the other CPUs."  Dirty
        state, MESI ownership, and transactional markers fold into the LLC
        copy; transactionally written lines go through the normal L1-evict
        path so they land on the overflow list.  Returns lines flushed.
        """
        l1 = self.l1s[core_id]
        flushed = 0
        for line_addr in list(l1.resident_lines()):
            meta = l1.remove(line_addr)
            if meta is None:
                continue
            self.handle_l1_eviction(core_id, meta)
            flushed += 1
        return flushed

    # -- transaction-lifetime operations ----------------------------------------

    def invalidate_written_lines(self, tx_id: int, lines: Set[int]) -> int:
        """Drop a transaction's speculatively written lines (abort path).

        "UHTM flushes all pipeline states of a core at first and invalidates
        all cache blocks modified by the aborting transaction."
        """
        invalidated = 0
        for line_addr in sorted(lines):
            holders = self.l1_holders.pop(line_addr, None)
            if holders:
                for core_id in holders:
                    self.l1s[core_id].remove(line_addr)
            meta = self.llc.remove(line_addr)
            if meta is not None or holders:
                invalidated += 1
            self.directory.evict_line(line_addr)
        return invalidated

    def clear_tx_markers(self, tx_id: int, lines: Set[int]) -> None:
        """Commit path: make lines visible by clearing speculative markers."""
        for line_addr in sorted(lines):
            for core_id in self.l1_holders.get(line_addr, ()):
                meta = self.l1s[core_id].peek(line_addr)
                if meta is not None:
                    meta.clear_tx(tx_id)
            meta = self.llc.peek(line_addr)
            if meta is not None:
                meta.clear_tx(tx_id)

    # -- introspection -------------------------------------------------------------

    def llc_resident(self, line_addr: int) -> bool:
        return self.llc.peek(line_addr) is not None

    def l1_resident(self, core_id: int, line_addr: int) -> bool:
        return self.l1s[core_id].peek(line_addr) is not None

    def wipe(self) -> None:
        """Lose all cached state (crash)."""
        for l1 in self.l1s:
            l1.clear()
        self.llc.clear()
        self.l1_holders.clear()
