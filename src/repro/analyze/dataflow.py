"""The cross-file layer under the protocol checkers.

PR 2's checkers were single-file AST rules; the crash/concurrency
disciplines PR 6 introduced (staged-rename publication, pickle-clean specs,
wall-clock funnels) are *cross-file* properties: ``queue.py`` hands a lease
path to ``jobstore.write_json_atomic``, a figure driver's grid point is
pickled three modules away, a wall-clock read hides behind two wrapper
calls.  This module gives checkers the three ingredients those rules need:

* :class:`ProjectIndex` — a symbol table per module: every function and
  class with its qualified name, plus an import-alias map resolved to
  *files* (absolute ``repro.x.y`` imports, relative ``from .sibling`` /
  ``from ..pkg.mod`` imports, ``import m as alias`` and
  ``from m import f as g`` aliases all land on the defining module).
* :class:`CallGraph` — call edges between project functions, each tagged
  with how it was resolved (``local``, ``import``, ``self``, ``unique``)
  so checkers can choose their precision/recall point.  Reachability
  queries return the actual call chain for findings.
* intraprocedural helpers — single-assignment environments and
  source-order positions, enough to follow a value from its producer to a
  sink inside one function body.

Everything here is deliberately *under*-approximate: an edge or an alias
is only recorded when the resolution is syntactically certain (plus the
clearly-tagged ``unique`` fallback).  Checkers built on top therefore err
toward silence, and the dynamic suites (fault oracle, trace differentials)
keep backstopping what static analysis cannot see.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Project, SourceFile

#: Position of a node in its file — used for "happens before" queries.
Position = Tuple[int, int]


def node_position(node: ast.AST) -> Position:
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


@dataclass(frozen=True)
class FunctionKey:
    """Stable identity of one function across the analysed project."""

    path: str
    qualname: str

    def __str__(self) -> str:
        return f"{Path(self.path).name}:{self.qualname}"


@dataclass
class FunctionInfo:
    """One function/method definition plus its location context."""

    key: FunctionKey
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    source: SourceFile
    #: Innermost enclosing class name, if this is a method.
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[union-attr]


@dataclass(frozen=True)
class ImportedName:
    """What one local name imported into a module resolves to.

    Exactly one of ``module_path`` (a project file) or ``external`` (a
    dotted module outside the analysed set) is set.  ``symbol`` is the name
    inside that module for ``from m import f`` bindings; ``None`` means the
    binding *is* the module (``import m as alias`` / ``from . import m``).
    """

    module_path: Optional[str] = None
    external: Optional[str] = None
    symbol: Optional[str] = None


@dataclass
class ModuleInfo:
    """Symbol table for one source file."""

    source: SourceFile
    resolved_path: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    imports: Dict[str, ImportedName] = field(default_factory=dict)

    def functions_named(self, name: str) -> List[FunctionInfo]:
        return [info for info in self.functions.values() if info.name == name]

    def top_level_function(self, name: str) -> Optional[FunctionInfo]:
        return self.functions.get(name)

    def method(self, class_name: str, name: str) -> Optional[FunctionInfo]:
        return self.functions.get(f"{class_name}.{name}")


def iter_own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Every node of ``scope``'s body, excluding nested function bodies."""
    stack: List[ast.AST] = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a nested def is its own scope; don't descend
        stack.extend(ast.iter_child_nodes(node))


def single_assignments(scope: ast.AST) -> Dict[str, ast.AST]:
    """``name -> value`` for names assigned exactly once in ``scope``.

    Flow-insensitive on purpose: a name rebound twice is dropped entirely
    rather than guessed at, so downstream dataflow never follows a stale
    binding.  ``with open(...) as f`` and ``for``-targets count as binds.
    """
    values: Dict[str, List[ast.AST]] = {}
    for node in iter_own_nodes(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                values.setdefault(target.id, []).append(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                values.setdefault(node.target.id, []).append(node.value)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            if isinstance(node.optional_vars, ast.Name):
                values.setdefault(node.optional_vars.id, []).append(
                    node.context_expr
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                # Iteration rebinding: origin unknown, poison the name.
                values.setdefault(node.target.id, []).extend((node, node))
    return {
        name: nodes[0] for name, nodes in values.items() if len(nodes) == 1
    }


def resolve_value(
    expr: Optional[ast.AST], env: Dict[str, ast.AST], depth: int = 5
) -> Optional[ast.AST]:
    """Chase ``expr`` through single-assignment names to its origin."""
    while depth > 0 and isinstance(expr, ast.Name) and expr.id in env:
        expr = env[expr.id]
        depth -= 1
    return expr


def call_terminal(call: ast.Call) -> Optional[str]:
    """The last name segment of a call's callee (``a.b.c(...)`` -> ``c``)."""
    head = call.func
    if isinstance(head, ast.Name):
        return head.id
    if isinstance(head, ast.Attribute):
        return head.attr
    return None


def _dotted_repro_name(path: Path) -> Optional[str]:
    """``repro.serve.queue`` for any file under a ``repro/`` directory."""
    parts = path.parts
    if "repro" not in parts:
        return None
    index = len(parts) - 1 - parts[::-1].index("repro")
    rest = list(parts[index + 1 :])
    if not rest:
        return "repro"
    leaf = rest[-1]
    if leaf == "__init__.py":
        rest = rest[:-1]
    elif leaf.endswith(".py"):
        rest[-1] = leaf[:-3]
    return ".".join(["repro"] + rest)


class ProjectIndex:
    """Symbol tables for every module of a :class:`Project`, cross-linked."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_dotted: Dict[str, str] = {}
        for source in project.files:
            resolved = str(source.path.resolve())
            module = ModuleInfo(source=source, resolved_path=resolved)
            self.modules[resolved] = module
            dotted = _dotted_repro_name(source.path)
            if dotted is not None:
                self._by_dotted[dotted] = resolved
        for module in self.modules.values():
            self._index_definitions(module)
            self._index_imports(module)

    # -- definitions -------------------------------------------------------

    def _index_definitions(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}{child.name}"
                    info = FunctionInfo(
                        key=FunctionKey(module.resolved_path, qualname),
                        node=child,
                        source=module.source,
                        class_name=class_name,
                    )
                    module.functions[qualname] = info
                    visit(child, f"{qualname}.", class_name)
                elif isinstance(child, ast.ClassDef):
                    module.classes[child.name] = child
                    visit(child, f"{prefix}{child.name}.", child.name)
                else:
                    visit(child, prefix, class_name)

        visit(module.source.tree, "", None)

    # -- imports -----------------------------------------------------------

    def _file_for(self, directory: Path, parts: Sequence[str]) -> Optional[str]:
        """Resolve ``directory / parts`` to a project module file."""
        base = directory
        for part in parts[:-1]:
            base = base / part
        if parts:
            candidates = [
                base / f"{parts[-1]}.py",
                base / parts[-1] / "__init__.py",
            ]
        else:
            candidates = [directory / "__init__.py"]
        for candidate in candidates:
            resolved = str(candidate.resolve())
            if resolved in self.modules:
                return resolved
        return None

    def _index_imports(self, module: ModuleInfo) -> None:
        source_dir = module.source.path.parent
        for node in ast.walk(module.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.asname is not None:
                        target = self._by_dotted.get(alias.name)
                        if target is not None:
                            module.imports[bound] = ImportedName(
                                module_path=target
                            )
                            continue
                    module.imports.setdefault(
                        bound,
                        ImportedName(external=alias.name.split(".")[0]),
                    )
            elif isinstance(node, ast.ImportFrom):
                self._index_import_from(module, source_dir, node)

    def _index_import_from(
        self, module: ModuleInfo, source_dir: Path, node: ast.ImportFrom
    ) -> None:
        if node.level == 0:
            base_parts = (node.module or "").split(".")
            base_file = (
                self._by_dotted.get(node.module or "")
                if base_parts and base_parts[0] == "repro"
                else None
            )
            base_dir: Optional[Path] = (
                Path(base_file).parent
                if base_file is not None and base_file.endswith("__init__.py")
                else None
            )
        else:
            climb = source_dir
            for _ in range(node.level - 1):
                climb = climb.parent
            if node.module:
                base_file = self._file_for(climb, node.module.split("."))
            else:
                base_file = self._file_for(climb, [])
            base_dir = climb
            if node.module:
                base_dir = climb.joinpath(*node.module.split("."))
        for alias in node.names:
            bound = alias.asname or alias.name
            # ``from <pkg> import <submodule>`` binds a module...
            if base_dir is not None:
                sub_file = self._file_for(base_dir, [alias.name])
                if sub_file is not None:
                    module.imports[bound] = ImportedName(module_path=sub_file)
                    continue
            # ...otherwise it binds a symbol of the base module.
            if base_file is not None:
                module.imports[bound] = ImportedName(
                    module_path=base_file, symbol=alias.name
                )
            elif node.level == 0 and node.module:
                module.imports.setdefault(
                    bound,
                    ImportedName(
                        external=node.module.split(".")[0], symbol=alias.name
                    ),
                )

    # -- lookups -----------------------------------------------------------

    def module_for(self, source: SourceFile) -> ModuleInfo:
        return self.modules[str(source.path.resolve())]

    def module_at(self, path: str) -> Optional[ModuleInfo]:
        return self.modules.get(path)

    def function(self, key: FunctionKey) -> Optional[FunctionInfo]:
        module = self.modules.get(key.path)
        if module is None:
            return None
        return module.functions.get(key.qualname)

    def functions(self) -> Iterator[FunctionInfo]:
        for module in self.modules.values():
            yield from module.functions.values()

    def functions_named(self, name: str) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for module in self.modules.values():
            out.extend(module.functions_named(name))
        return out

    def enclosing_function(
        self, module: ModuleInfo, node: ast.AST
    ) -> Optional[FunctionInfo]:
        from .core import ancestors

        for ancestor in ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for info in module.functions.values():
                    if info.node is ancestor:
                        return info
        return None

    def _init_of(
        self, module: ModuleInfo, class_name: str
    ) -> Optional[FunctionInfo]:
        return module.method(class_name, "__init__")

    def resolve_symbol(
        self, imported: ImportedName
    ) -> Optional[FunctionInfo]:
        """The function an imported symbol binding lands on, if any."""
        if imported.module_path is None or imported.symbol is None:
            return None
        target = self.modules.get(imported.module_path)
        if target is None:
            return None
        info = target.top_level_function(imported.symbol)
        if info is not None:
            return info
        if imported.symbol in target.classes:
            return self._init_of(target, imported.symbol)
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        caller: Optional[FunctionInfo],
    ) -> Optional[Tuple[FunctionInfo, str]]:
        """Resolve a call to a project function; returns ``(info, kind)``.

        Kinds: ``local`` (same module, incl. nested defs and class
        constructors), ``import`` (through the alias table), ``self``
        (method on the caller's own class), ``unique`` (a project-unique
        bare method name — the tagged low-confidence fallback).
        """
        head = call.func
        if isinstance(head, ast.Name):
            # Nested function of the calling scope.
            if caller is not None:
                nested = module.functions.get(
                    f"{caller.key.qualname}.{head.id}"
                )
                if nested is not None:
                    return nested, "local"
            local = module.top_level_function(head.id)
            if local is not None:
                return local, "local"
            if head.id in module.classes:
                init = self._init_of(module, head.id)
                if init is not None:
                    return init, "local"
                return None
            imported = module.imports.get(head.id)
            if imported is not None:
                info = self.resolve_symbol(imported)
                if info is not None:
                    return info, "import"
            return None
        if isinstance(head, ast.Attribute):
            receiver = head.value
            if isinstance(receiver, ast.Name):
                imported = module.imports.get(receiver.id)
                if (
                    imported is not None
                    and imported.symbol is None
                    and imported.module_path is not None
                ):
                    target = self.modules.get(imported.module_path)
                    if target is not None:
                        info = target.top_level_function(head.attr)
                        if info is None and head.attr in target.classes:
                            info = self._init_of(target, head.attr)
                        if info is not None:
                            return info, "import"
                if (
                    receiver.id in ("self", "cls")
                    and caller is not None
                    and caller.class_name is not None
                ):
                    method = module.method(caller.class_name, head.attr)
                    if method is not None:
                        return method, "self"
            # Fallback: a bare method name defined exactly once anywhere.
            candidates = self.functions_named(head.attr)
            if len(candidates) == 1:
                return candidates[0], "unique"
        return None


@dataclass(frozen=True)
class CallEdge:
    """One resolved call: who calls whom, where, and how confidently."""

    caller: FunctionKey
    callee: FunctionKey
    call: ast.Call
    kind: str  # local | import | self | unique


#: Edge kinds whose resolution is syntactically certain.
CONFIDENT_KINDS = frozenset({"local", "import", "self"})


class CallGraph:
    """Call edges between project functions, with reachability queries."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: Dict[FunctionKey, List[CallEdge]] = {}
        self.reverse: Dict[FunctionKey, List[CallEdge]] = {}
        for module in index.modules.values():
            for info in module.functions.values():
                for node in iter_own_nodes(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    resolved = index.resolve_call(module, node, info)
                    if resolved is None:
                        continue
                    callee, kind = resolved
                    edge = CallEdge(
                        caller=info.key,
                        callee=callee.key,
                        call=node,
                        kind=kind,
                    )
                    self.edges.setdefault(info.key, []).append(edge)
                    self.reverse.setdefault(callee.key, []).append(edge)

    def callees(
        self, key: FunctionKey, kinds: Iterable[str] = CONFIDENT_KINDS
    ) -> List[CallEdge]:
        wanted = frozenset(kinds)
        return [e for e in self.edges.get(key, []) if e.kind in wanted]

    def reaching(
        self,
        seeds: Iterable[FunctionKey],
        kinds: Iterable[str] = CONFIDENT_KINDS,
    ) -> Set[FunctionKey]:
        """Every function that can reach a seed through ``kinds`` edges."""
        wanted = frozenset(kinds)
        reached: Set[FunctionKey] = set(seeds)
        queue = deque(reached)
        while queue:
            current = queue.popleft()
            for edge in self.reverse.get(current, []):
                if edge.kind in wanted and edge.caller not in reached:
                    reached.add(edge.caller)
                    queue.append(edge.caller)
        return reached

    def chain_to(
        self,
        start: FunctionKey,
        targets: Set[FunctionKey],
        kinds: Iterable[str] = CONFIDENT_KINDS,
    ) -> List[FunctionKey]:
        """A shortest call chain from ``start`` into ``targets`` (BFS)."""
        wanted = frozenset(kinds)
        if start in targets:
            return [start]
        parents: Dict[FunctionKey, FunctionKey] = {}
        queue = deque([start])
        seen = {start}
        while queue:
            current = queue.popleft()
            for edge in self.edges.get(current, []):
                if edge.kind not in wanted or edge.callee in seen:
                    continue
                parents[edge.callee] = current
                if edge.callee in targets:
                    chain = [edge.callee]
                    while chain[-1] != start:
                        chain.append(parents[chain[-1]])
                    return list(reversed(chain))
                seen.add(edge.callee)
                queue.append(edge.callee)
        return []


def engine_for(project: Project) -> Tuple[ProjectIndex, CallGraph]:
    """The (index, call graph) pair for a project, built once on first use.

    Cached on the project instance itself so every cross-file checker in a
    run shares the same tables and the cache dies with the project.
    """
    cached = getattr(project, "_dataflow_engine", None)
    if cached is None:
        index = ProjectIndex(project)
        cached = (index, CallGraph(index))
        project._dataflow_engine = cached  # type: ignore[attr-defined]
    return cached
