"""Tests for the crash controller / recovery manager."""

from __future__ import annotations

from repro import HTMConfig, MachineConfig, System
from repro.htm.recovery import CrashController, RecoveryReport
from repro.mem.address import MemoryKind
from repro.sim.engine import SimThread


def make_system():
    return System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())


def commit_word(system, addr, value):
    thread = SimThread(0, "t", lambda t: iter(()))
    tx = system.htm.begin(thread, 0, 1, 1)
    system.htm.tx_write(tx, addr, value)
    system.htm.commit(tx)


class TestCrashController:
    def test_crash_counts(self):
        system = make_system()
        assert system.crash_controller.crashes == 0
        system.crash()
        system.crash()
        assert system.crash_controller.crashes == 2

    def test_report_fields(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        commit_word(system, addr, 9)
        system.crash()
        report = system.recover()
        assert isinstance(report, RecoveryReport)
        assert report.replayed_lines >= 1
        assert report.surviving_nvm_words >= 1

    def test_crash_wipes_caches(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        commit_word(system, addr, 9)
        line = addr - addr % 64
        assert system.hierarchy.llc_resident(line)
        system.crash()
        assert not system.hierarchy.llc_resident(line)
        assert system.hierarchy.l1s[0].resident_count() == 0

    def test_recover_with_empty_log(self):
        system = make_system()
        system.crash()
        report = system.recover()
        assert report.replayed_lines == 0

    def test_recovery_then_new_transactions(self):
        """The system is fully usable after a crash/recover cycle."""
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        commit_word(system, addr, 1)
        system.crash()
        system.recover()
        commit_word(system, addr, 2)
        assert system.controller.load_word(addr) == 2
        system.crash()
        system.recover()
        assert system.controller.nvm.load(addr) == 2
