"""Hierarchy latency accumulation kernels.

The demand path charges ``l1_ns`` for an L1 hit, ``l1_ns + llc_ns`` for an
LLC hit, and ``l1_ns + llc_ns + mem_ns`` for a miss (``mem_ns`` being the
controller's per-access device latency).  :class:`LatencyTable` precomputes
the two hit constants exactly as :class:`repro.cache.hierarchy.CacheHierarchy`
does — same operands, same addition order, bit-identical floats — and adds
batch resolution/accumulation entry points; :class:`VectorLatencyTable`
resolves batches as numpy arrays.

Batch totals use :func:`math.fsum` in *both* engines: the batch API is new,
so its cross-engine contract is pinned to exact summation rather than to
either engine's fold order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from ..params import LatencyConfig
from ._np import require_numpy

#: The hierarchy levels an access can be satisfied at, innermost first.
LEVELS: Tuple[str, ...] = ("l1", "llc", "mem")


class LatencyTable:
    """Scalar latency resolution for (level, mem_ns) access records."""

    def __init__(self, latency: LatencyConfig) -> None:
        self.latency = latency
        # Same precomputation (and float addition order) the hierarchy uses.
        self.l1_hit_ns = latency.l1_ns
        self.llc_hit_ns = latency.l1_ns + latency.llc_ns

    def resolve(self, level: str, mem_ns: float = 0.0) -> float:
        """Total latency of one access satisfied at ``level``."""
        if level == "l1":
            return self.l1_hit_ns
        if level == "llc":
            return self.llc_hit_ns
        if level == "mem":
            return self.llc_hit_ns + mem_ns
        raise ValueError(f"unknown hierarchy level {level!r}")

    def resolve_batch(
        self, levels: Sequence[str], mem_ns: Sequence[float]
    ) -> List[float]:
        """Per-access latencies for a batch of (level, mem_ns) records."""
        resolve = self.resolve
        return [resolve(level, ns) for level, ns in zip(levels, mem_ns)]

    def accumulate(
        self, levels: Sequence[str], mem_ns: Sequence[float]
    ) -> Tuple[Dict[str, int], Dict[str, float], float]:
        """Fold a batch into (per-level counts, per-level ns, total ns)."""
        counts = {level: 0 for level in LEVELS}
        totals = {level: [] for level in LEVELS}
        resolved = self.resolve_batch(levels, mem_ns)
        for level, latency in zip(levels, resolved):
            counts[level] += 1
            totals[level].append(latency)
        sums = {level: math.fsum(totals[level]) for level in LEVELS}
        return counts, sums, math.fsum(resolved)


class VectorLatencyTable(LatencyTable):
    """Numpy twin: batch resolution as one ``where`` chain over the batch."""

    def __init__(self, latency: LatencyConfig) -> None:
        require_numpy()
        super().__init__(latency)

    def resolve_batch(
        self, levels: Sequence[str], mem_ns: Sequence[float]
    ):
        np = require_numpy()
        levels = np.asarray(levels)
        unknown = ~np.isin(levels, np.asarray(LEVELS))
        if unknown.any():
            bad = levels[unknown][0]
            raise ValueError(f"unknown hierarchy level {bad!r}")
        mem = np.asarray(mem_ns, dtype=np.float64)
        out = np.where(
            levels == "l1",
            self.l1_hit_ns,
            np.where(
                levels == "llc", self.llc_hit_ns, self.llc_hit_ns + mem
            ),
        )
        return out

    def accumulate(
        self, levels: Sequence[str], mem_ns: Sequence[float]
    ) -> Tuple[Dict[str, int], Dict[str, float], float]:
        np = require_numpy()
        level_arr = np.asarray(levels)
        resolved = self.resolve_batch(level_arr, mem_ns)
        counts = {}
        sums = {}
        for level in LEVELS:
            selected = resolved[level_arr == level]
            counts[level] = int(selected.size)
            # fsum over the selected values: exact, so it matches the scalar
            # table regardless of either engine's internal fold order.
            sums[level] = math.fsum(selected.tolist())
        return counts, sums, math.fsum(resolved.tolist())
