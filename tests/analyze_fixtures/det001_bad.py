"""BAD fixture: one of every DET001 violation class."""

import random
from datetime import datetime
from time import time


def draw():
    return random.random()


def stamp():
    return time(), datetime.now()


def iterate(active: set, table: dict):
    out = []
    for tx_id in active:
        out.append(tx_id)
    for key in table.keys():
        out.append(key)
    for item in {3, 1, 2}:
        out.append(item)
    return out
