"""``python -m repro traffic`` — the open-loop traffic scenario, end to end.

Runs the ``traffic`` figure grid (cacheable, pool-parallel, serve-able like
any figure), prints the honest tail-latency table, then traces the
shared-vs-isolated domain configurations and prints the abort-induced
tail-amplification breakdown from :mod:`repro.traffic.report`.

``--smoke`` is the CI tier: the quick matrix at 1/64 scale, gated on

* percentile sanity — every row reports ``p50 <= p99 <= p999``;
* tail reduction — per-tenant conflict domains beat the shared domain at
  raw request p999 on every (inner, arrival) pair, same seed;
* the Section IV-D claim under load — isolation reduces abort-induced
  p999 tail amplification (actual vs abort-free replay) vs the shared
  domain.

Both gates are deterministic: the simulator is seed-stable, so the smoke
numbers are byte-identical on every run and platform.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

from ..harness.bench import SMOKE_SCALE
from ..harness.cache import ResultCache
from ..harness.config import DEFAULT_SCALE
from ..harness.figures import (
    TRAFFIC_DOMAINS,
    traffic,
    traffic_grid,
    traffic_matrix,
)
from ..harness.report import format_table
from ..harness.timer import Stopwatch
from .report import TailReport, tail_report

#: Column indexes of the percentile cells in the traffic figure rows.
_P50, _P99, _P999 = 3, 4, 5


def _percentile_violations(figure) -> List[str]:
    out = []
    for row in figure.rows:
        p50, p99, p999 = row[_P50], row[_P99], row[_P999]
        if not p50 <= p99 <= p999:
            out.append(
                f"{row[0]}/{row[1]}/{row[2]}: p50={p50:.3f} p99={p99:.3f} "
                f"p999={p999:.3f} not monotone"
            )
    return out


def _reduction_violations(figure) -> List[str]:
    """Per (inner, arrival): the isolated domain must beat shared at p999."""
    p999 = {(row[0], row[1], row[2]): row[_P999] for row in figure.rows}
    out = []
    for (inner, arrival, domains), value in sorted(p999.items()):
        if domains != "shared":
            continue
        isolated = p999.get((inner, arrival, "isolated"))
        if isolated is not None and not isolated < value:
            out.append(
                f"{inner}/{arrival}: isolated p999 {isolated:.3f}us is not "
                f"below shared {value:.3f}us"
            )
    return out


def _tail_section(
    quick: bool, scale: float, seed: int
) -> Tuple[List[Tuple[str, str, Dict[str, TailReport]]], str]:
    """Trace every (inner, arrival) pair under both domain configs."""
    specs = {
        point.key: point.spec for point in traffic_grid(quick, scale, seed)
    }
    inners, arrivals = traffic_matrix(quick)
    sections = []
    rows = []
    for inner in inners:
        for arrival in arrivals:
            reports: Dict[str, TailReport] = {}
            for domains, _ in TRAFFIC_DOMAINS:
                reports[domains] = tail_report(
                    specs[(inner, arrival, domains)],
                    f"{inner}:{arrival}:{domains}",
                )
            sections.append((inner, arrival, reports))
            for domains, _ in TRAFFIC_DOMAINS:
                report = reports[domains]
                alias_ns = report.excess_ns_by_group.get("signature_alias", 0.0)
                total_excess = sum(report.excess_ns_by_group.values())
                rows.append(
                    [
                        inner,
                        arrival,
                        domains,
                        report.chains,
                        report.clean_chains,
                        report.p999_ns / 1e3,
                        report.ideal_p999_ns / 1e3,
                        report.amplification_p99,
                        report.amplification_p999,
                        alias_ns / total_excess if total_excess else 0.0,
                    ]
                )
    table = format_table(
        [
            "inner",
            "arrival",
            "domains",
            "chains",
            "clean",
            "p999_us",
            "ideal_p999_us",
            "amp_p99",
            "amp_p999",
            "alias_share",
        ],
        rows,
        title="[Traffic] Abort-induced tail amplification "
        "(actual vs abort-free replay of the same arrivals)",
    )
    return sections, table


def _amplification_violations(sections) -> List[str]:
    out = []
    for inner, arrival, reports in sections:
        shared = reports["shared"].amplification_p999
        isolated = reports["isolated"].amplification_p999
        if not isolated < shared:
            out.append(
                f"{inner}/{arrival}: isolated amp_p999 {isolated:.3f} is "
                f"not below shared {shared:.3f}"
            )
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro traffic",
        description="Open-loop multi-tenant traffic scenario: honest tail "
        "latency plus abort-induced tail amplification.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: quick matrix at 1/64 scale, gated on percentile "
        "sanity and on isolation reducing p999 tail amplification",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full store matrix instead of the quick one",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the figure grid (results bit-identical "
        "for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="on-disk result cache for the figure grid",
    )
    parser.add_argument(
        "--no-tail",
        action="store_true",
        help="skip the traced tail-amplification section",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON"
    )
    args = parser.parse_args(argv)
    if args.smoke and args.full:
        parser.error("--smoke and --full are mutually exclusive")
    quick = not args.full
    scale = args.scale
    if scale is None:
        scale = SMOKE_SCALE if args.smoke else DEFAULT_SCALE
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    stopwatch = Stopwatch()
    figure = traffic(
        quick=quick, scale=scale, seed=args.seed, jobs=args.jobs, cache=cache
    )
    print(figure.pretty())
    print()
    failures = _percentile_violations(figure)
    for violation in failures:
        print(f"PERCENTILE SANITY FAILED: {violation}")
    if not failures:
        print("percentile sanity: p50 <= p99 <= p999 on every row")
    if args.smoke:
        reduction_failures = _reduction_violations(figure)
        for violation in reduction_failures:
            print(f"TAIL REDUCTION GATE FAILED: {violation}")
        if not reduction_failures:
            print(
                "tail reduction: isolated domains beat the shared domain "
                "at p999 on every (inner, arrival) pair"
            )
        failures.extend(reduction_failures)

    payload = {
        "figure": {"columns": figure.columns, "rows": figure.rows},
        "tail": [],
    }
    if not args.no_tail:
        print()
        sections, table = _tail_section(quick, scale, args.seed)
        print(table)
        for inner, arrival, reports in sections:
            shared = reports["shared"].amplification_p999
            isolated = reports["isolated"].amplification_p999
            reduction = (shared - isolated) / shared if shared else 0.0
            print(
                f"  * {inner}/{arrival}: isolation cuts p999 amplification "
                f"{shared:.2f}x -> {isolated:.2f}x ({reduction:.0%} lower)"
            )
            payload["tail"].append(
                {
                    "inner": inner,
                    "arrival": arrival,
                    "reports": {
                        name: report.to_dict()
                        for name, report in reports.items()
                    },
                }
            )
        if args.smoke:
            amp_failures = _amplification_violations(sections)
            for violation in amp_failures:
                print(f"TAIL AMPLIFICATION GATE FAILED: {violation}")
            failures.extend(amp_failures)
    print(f"\n[traffic] report generated in {stopwatch} wall clock")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
