"""Tests of the MESI protocol: transitions and the SWMR invariant."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.coherence import (
    CoherenceRequest,
    MesiState,
    check_swmr,
    next_state_for_holder,
    next_state_for_requester,
)
from repro.cache.hierarchy import CacheHierarchy
from repro.mem.controller import MemoryController
from repro.params import (
    CacheGeometry,
    LINE_SIZE,
    LatencyConfig,
    MachineConfig,
    MemoryConfig,
)


def make_hierarchy(cores=4):
    machine = MachineConfig(
        cores=cores,
        l1=CacheGeometry(size_bytes=8 * LINE_SIZE, ways=2),
        llc=CacheGeometry(size_bytes=64 * LINE_SIZE, ways=4),
    )
    controller = MemoryController(machine.memory, machine.latency)
    return CacheHierarchy(machine, controller), controller


def dram_line(controller, index):
    return controller.address_space.dram_heap.base + index * LINE_SIZE


def states_of(hierarchy, line):
    out = []
    for l1 in hierarchy.l1s:
        meta = l1.peek(line)
        out.append(meta.mesi if meta is not None else MesiState.INVALID)
    return out


class TestTransitionTable:
    def test_getm_always_modified(self):
        assert next_state_for_requester(CoherenceRequest.GET_M, False) is \
            MesiState.MODIFIED
        assert next_state_for_requester(CoherenceRequest.GET_M, True) is \
            MesiState.MODIFIED

    def test_gets_exclusive_when_alone(self):
        assert next_state_for_requester(CoherenceRequest.GET_S, False) is \
            MesiState.EXCLUSIVE

    def test_gets_shared_with_others(self):
        assert next_state_for_requester(CoherenceRequest.GET_S, True) is \
            MesiState.SHARED

    def test_holder_invalidated_by_getm(self):
        for state in MesiState:
            assert next_state_for_holder(CoherenceRequest.GET_M, state) is \
                MesiState.INVALID

    def test_holder_downgraded_by_gets(self):
        assert next_state_for_holder(
            CoherenceRequest.GET_S, MesiState.MODIFIED
        ) is MesiState.SHARED
        assert next_state_for_holder(
            CoherenceRequest.GET_S, MesiState.EXCLUSIVE
        ) is MesiState.SHARED
        assert next_state_for_holder(
            CoherenceRequest.GET_S, MesiState.SHARED
        ) is MesiState.SHARED


class TestHierarchyStates:
    def test_first_reader_is_exclusive(self):
        hierarchy, controller = make_hierarchy()
        line = dram_line(controller, 0)
        hierarchy.access(0, line, False)
        assert hierarchy.l1s[0].peek(line).mesi is MesiState.EXCLUSIVE

    def test_second_reader_shares_and_downgrades(self):
        hierarchy, controller = make_hierarchy()
        line = dram_line(controller, 0)
        hierarchy.access(0, line, False)
        hierarchy.access(1, line, False)
        assert hierarchy.l1s[0].peek(line).mesi is MesiState.SHARED
        assert hierarchy.l1s[1].peek(line).mesi is MesiState.SHARED

    def test_writer_is_modified_and_sole(self):
        hierarchy, controller = make_hierarchy()
        line = dram_line(controller, 0)
        hierarchy.access(0, line, False)
        hierarchy.access(1, line, False)
        hierarchy.access(2, line, True)
        assert hierarchy.l1s[2].peek(line).mesi is MesiState.MODIFIED
        assert hierarchy.l1s[0].peek(line) is None
        assert hierarchy.l1s[1].peek(line) is None

    def test_silent_upgrade_e_to_m(self):
        hierarchy, controller = make_hierarchy()
        line = dram_line(controller, 0)
        hierarchy.access(0, line, False)
        assert hierarchy.l1s[0].peek(line).mesi is MesiState.EXCLUSIVE
        hierarchy.access(0, line, True)
        assert hierarchy.l1s[0].peek(line).mesi is MesiState.MODIFIED

    def test_read_after_remote_write_downgrades_writer(self):
        hierarchy, controller = make_hierarchy()
        line = dram_line(controller, 0)
        hierarchy.access(0, line, True)
        hierarchy.access(1, line, False)
        assert hierarchy.l1s[0].peek(line).mesi is MesiState.SHARED
        assert hierarchy.l1s[1].peek(line).mesi is MesiState.SHARED


class TestSwmrInvariant:
    def test_check_swmr_logic(self):
        M, E, S, I = (MesiState.MODIFIED, MesiState.EXCLUSIVE,
                      MesiState.SHARED, MesiState.INVALID)
        assert check_swmr([M, I, I])
        assert check_swmr([S, S, S])
        assert check_swmr([I, I, I])
        assert not check_swmr([M, M, I])
        assert not check_swmr([M, S, I])
        assert not check_swmr([E, E, I])
        assert not check_swmr([E, S, I])

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # core
                st.integers(min_value=0, max_value=5),   # line index
                st.booleans(),                            # is_write
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_swmr_holds_under_random_traffic(self, ops):
        hierarchy, controller = make_hierarchy()
        lines = [dram_line(controller, i) for i in range(6)]
        for core, line_index, is_write in ops:
            hierarchy.access(core, lines[line_index], is_write)
            for line in lines:
                assert check_swmr(states_of(hierarchy, line)), (
                    f"SWMR violated on {line:#x}"
                )
