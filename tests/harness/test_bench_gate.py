"""Tests for the ``repro bench`` perf-regression gate and smoke tier."""

from __future__ import annotations

import json

import pytest

from repro.harness import bench
from repro.harness.bench import (
    ABS_SLACK_S,
    MIN_COMPARABLE_S,
    SMOKE_SCALE,
    artifact_engine,
    comparable_points,
    compare_to_baseline,
    _load_baseline,
)


def _point(label, key, elapsed_s, cached=False):
    return {
        "key": key,
        "label": label,
        "fingerprint": "f" * 12,
        "cached": cached,
        "elapsed_s": elapsed_s,
    }


def _artifact(points, figure="fig7"):
    return {"figure": figure, "points": points}


class TestCompareToBaseline:
    def test_large_slowdown_fails(self):
        baseline = _artifact([_point("a", ["x"], 1.0)])
        current = _artifact([_point("a", ["x"], 2.0)])
        violations = compare_to_baseline(current, baseline)
        assert len(violations) == 1
        assert "2.000s vs baseline 1.000s" in violations[0]

    def test_within_tolerance_passes(self):
        baseline = _artifact([_point("a", ["x"], 1.0)])
        current = _artifact([_point("a", ["x"], 1.1)])
        assert compare_to_baseline(current, baseline) == []

    def test_absolute_slack_shields_small_points(self):
        # 40% slower, but only 60 ms in absolute terms: under the slack.
        baseline = _artifact([_point("a", ["x"], 0.15)])
        current = _artifact([_point("a", ["x"], 0.21)])
        assert compare_to_baseline(current, baseline) == []
        # The same relative slowdown past the slack fails.
        baseline = _artifact([_point("a", ["x"], 1.5)])
        current = _artifact([_point("a", ["x"], 2.1)])
        assert len(compare_to_baseline(current, baseline)) == 1

    def test_boundary_is_exclusive(self):
        baseline = _artifact([_point("a", ["x"], 1.0)])
        exactly = _artifact([_point("a", ["x"], 1.15 + ABS_SLACK_S)])
        assert compare_to_baseline(exactly, baseline) == []

    def test_cached_points_never_gate(self):
        baseline = _artifact([_point("a", ["x"], 1.0, cached=True)])
        current = _artifact([_point("a", ["x"], 99.0)])
        assert compare_to_baseline(current, baseline) == []
        baseline = _artifact([_point("a", ["x"], 1.0)])
        current = _artifact([_point("a", ["x"], 99.0, cached=True)])
        assert compare_to_baseline(current, baseline) == []

    def test_noise_floor_points_never_gate(self):
        tiny = MIN_COMPARABLE_S / 2
        baseline = _artifact([_point("a", ["x"], tiny)])
        current = _artifact([_point("a", ["x"], 99.0)])
        assert compare_to_baseline(current, baseline) == []

    def test_unmatched_points_are_skipped(self):
        baseline = _artifact([_point("a", ["x"], 1.0)])
        current = _artifact(
            [_point("b", ["y"], 99.0), _point("a", ["z"], 99.0)]
        )
        assert compare_to_baseline(current, baseline) == []

    def test_custom_tolerance(self):
        baseline = _artifact([_point("a", ["x"], 10.0)])
        current = _artifact([_point("a", ["x"], 14.0)])
        assert compare_to_baseline(current, baseline, tolerance=0.15)
        assert compare_to_baseline(current, baseline, tolerance=0.5) == []

    def test_multiple_regressions_all_reported(self):
        baseline = _artifact(
            [_point("a", ["x"], 1.0), _point("b", ["y"], 2.0)]
        )
        current = _artifact(
            [_point("a", ["x"], 3.0), _point("b", ["y"], 6.0)]
        )
        assert len(compare_to_baseline(current, baseline)) == 2


class TestComparablePoints:
    def test_pairs_matched_simulated_points(self):
        baseline = _artifact(
            [_point("a", ["x"], 1.0), _point("b", ["y"], 1.0)]
        )
        current = _artifact(
            [_point("a", ["x"], 2.0), _point("c", ["z"], 2.0)]
        )
        pairs = comparable_points(current, baseline)
        assert [(p["label"], b["label"]) for p, b in pairs] == [("a", "a")]

    def test_cached_points_do_not_pair(self):
        baseline = _artifact([_point("a", ["x"], 1.0, cached=True)])
        current = _artifact([_point("a", ["x"], 2.0)])
        assert comparable_points(current, baseline) == []

    def test_missing_engine_means_scalar(self):
        # Pre-engine artifacts were all scalar measurements; the gate
        # assumes that (with a CLI warning) instead of refusing to compare.
        assert artifact_engine({"figure": "fig7"}) == "scalar"
        assert artifact_engine({"engine": "vectorized"}) == "vectorized"


class TestLoadBaseline:
    def test_directory_resolution(self, tmp_path):
        path = tmp_path / "BENCH_fig7.json"
        path.write_text(json.dumps(_artifact([], figure="fig7")))
        data, resolved = _load_baseline(str(tmp_path), "fig7")
        assert data["figure"] == "fig7"
        assert resolved == path

    def test_missing_file(self, tmp_path):
        data, resolved = _load_baseline(str(tmp_path), "fig7")
        assert data is None
        assert resolved.name == "BENCH_fig7.json"

    def test_figure_mismatch_rejected(self, tmp_path):
        path = tmp_path / "whatever.json"
        path.write_text(json.dumps(_artifact([], figure="fig2")))
        data, _ = _load_baseline(str(path), "fig7")
        assert data is None

    def test_direct_file(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps(_artifact([], figure="fig7")))
        data, _ = _load_baseline(str(path), "fig7")
        assert data["figure"] == "fig7"


class TestBenchCliGate:
    """End-to-end: one real smoke run, then gate against doctored baselines."""

    @pytest.fixture(scope="class")
    def smoke_artifact(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("bench-out")
        rc = bench.main(["fig2", "-m", "smoke", "--out-dir", str(out_dir)])
        assert rc == 0
        path = out_dir / "BENCH_fig2.json"
        return json.loads(path.read_text(encoding="utf-8"))

    def test_smoke_tier_sets_scale_and_quick(self, smoke_artifact):
        assert smoke_artifact["scale"] == SMOKE_SCALE
        assert smoke_artifact["quick"] is True
        assert smoke_artifact["simulated"] == smoke_artifact["points_total"]
        assert all(p["elapsed_s"] >= 0 for p in smoke_artifact["points"])

    def test_gate_fails_against_faster_baseline(
        self, smoke_artifact, tmp_path, monkeypatch, capsys
    ):
        # Shrink the guards so the synthetic baseline gates every point
        # regardless of how fast this host is.
        monkeypatch.setattr(bench, "MIN_COMPARABLE_S", 0.0)
        monkeypatch.setattr(bench, "ABS_SLACK_S", 0.0)
        baseline = json.loads(json.dumps(smoke_artifact))
        for point in baseline["points"]:
            point["elapsed_s"] = point["elapsed_s"] / 1000 + 1e-6
        baseline_path = tmp_path / "BENCH_fig2.json"
        baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
        rc = bench.main(
            [
                "fig2",
                "-m",
                "smoke",
                "--compare",
                str(baseline_path),
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "perf gate FAILED" in out

    def test_gate_passes_against_slower_baseline(
        self, smoke_artifact, tmp_path, capsys
    ):
        baseline = json.loads(json.dumps(smoke_artifact))
        for point in baseline["points"]:
            point["elapsed_s"] = point["elapsed_s"] * 100 + 10.0
        baseline_path = tmp_path / "BENCH_fig2.json"
        baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
        rc = bench.main(
            [
                "fig2",
                "-m",
                "smoke",
                "--compare",
                str(tmp_path),
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "perf gate passed" in out

    def test_missing_baseline_is_not_gated(self, tmp_path, capsys):
        rc = bench.main(
            [
                "fig2",
                "-m",
                "smoke",
                "--compare",
                str(tmp_path / "nowhere"),
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        assert rc == 0
        assert "not gated" in capsys.readouterr().out

    def test_engineless_baseline_warns_and_still_gates(
        self, smoke_artifact, tmp_path, capsys
    ):
        # A baseline written before artifacts were engine-stamped compares
        # as scalar — with a warning — rather than silently or fatally.
        baseline = json.loads(json.dumps(smoke_artifact))
        del baseline["engine"]
        for point in baseline["points"]:
            point["elapsed_s"] = point["elapsed_s"] * 100 + 10.0
        baseline_path = tmp_path / "BENCH_fig2.json"
        baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
        rc = bench.main(
            [
                "fig2",
                "-m",
                "smoke",
                "--compare",
                str(baseline_path),
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "no engine field; assuming 'scalar'" in out
        assert "perf gate passed" in out

    def test_vacuous_gate_fails(self, smoke_artifact, tmp_path, capsys):
        # A baseline whose labels match nothing pairs zero points; the
        # gate must fail loudly instead of passing without comparing.
        baseline = json.loads(json.dumps(smoke_artifact))
        for point in baseline["points"]:
            point["label"] = "renamed-" + point["label"]
        baseline_path = tmp_path / "BENCH_fig2.json"
        baseline_path.write_text(json.dumps(baseline), encoding="utf-8")
        rc = bench.main(
            [
                "fig2",
                "-m",
                "smoke",
                "--compare",
                str(baseline_path),
                "--out-dir",
                str(tmp_path / "out"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "compared nothing" in out
