"""The discrete-event engine: min-clock interleaving of simulated threads.

Threads are generators that yield (``None``) once per workload operation.
The engine resumes whichever runnable thread currently has the smallest local
clock, giving a deterministic interleaving that respects per-thread timing.
Components may block a thread (e.g. waiting on the fallback lock) and wake it
later at a given simulated time.
"""

from __future__ import annotations

import enum
import heapq
from typing import Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError

ThreadBody = Generator[None, None, None]


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


class SimThread:
    """One simulated hardware thread with its own local clock."""

    def __init__(
        self,
        thread_id: int,
        name: str,
        body_factory: Callable[["SimThread"], ThreadBody],
    ) -> None:
        self.thread_id = thread_id
        self.name = name
        self.clock_ns: float = 0.0
        self.state = ThreadState.RUNNABLE
        self._body_factory = body_factory
        self._body: Optional[ThreadBody] = None
        #: Monotonic tiebreaker so heap ordering is total and deterministic.
        self._sequence = 0

    def advance(self, delta_ns: float) -> None:
        """Charge ``delta_ns`` of simulated time to this thread."""
        if delta_ns < 0:
            raise SimulationError(f"negative time advance: {delta_ns}")
        self.clock_ns += delta_ns

    def advance_to(self, at_ns: float) -> None:
        """Move the clock forward to ``at_ns`` if it is in the future."""
        if at_ns > self.clock_ns:
            self.clock_ns = at_ns

    def _ensure_body(self) -> ThreadBody:
        if self._body is None:
            self._body = self._body_factory(self)
        return self._body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimThread({self.thread_id}, {self.name!r}, "
            f"t={self.clock_ns:.1f}ns, {self.state.value})"
        )


class Engine:
    """Runs a set of :class:`SimThread` objects to completion.

    The run loop is a priority queue ordered by ``(clock_ns, sequence)``.
    Each pop resumes one thread for one step (one workload operation).  A
    blocked thread leaves the queue until another component wakes it.
    """

    def __init__(self) -> None:
        self._threads: List[SimThread] = []
        self._heap: List = []
        self._push_count = 0
        self._steps = 0
        #: Fault-injection hook (see :mod:`repro.faults`): consulted before
        #: every thread step for step-count and simulated-time crash points.
        #: A raised :class:`~repro.errors.PowerFailure` propagates out of
        #: :meth:`run`; the dead machine is never resumed.
        self.fault_injector = None
        #: Optional event tracer (see :mod:`repro.obs`): scheduling events
        #: (block/wake/done) are emitted when attached, else zero cost.
        self.tracer = None

    @property
    def threads(self) -> List[SimThread]:
        return list(self._threads)

    @property
    def steps_executed(self) -> int:
        return self._steps

    def add_thread(self, thread: SimThread) -> None:
        self._threads.append(thread)
        self._push(thread)

    def _push(self, thread: SimThread) -> None:
        self._push_count += 1
        thread._sequence = self._push_count
        heapq.heappush(self._heap, (thread.clock_ns, thread._sequence, thread))

    # -- blocking ----------------------------------------------------------

    def block(self, thread: SimThread) -> None:
        """Mark ``thread`` blocked; it will be skipped until woken.

        The thread stays in the heap; stale entries are filtered on pop
        (lazy deletion), keeping block/wake O(log n).
        """
        if thread.state is ThreadState.DONE:
            raise SimulationError("cannot block a finished thread")
        thread.state = ThreadState.BLOCKED
        if self.tracer is not None:
            self.tracer.emit(
                "thread.block", ts_ns=thread.clock_ns, thread_id=thread.thread_id
            )

    def wake(self, thread: SimThread, at_ns: Optional[float] = None) -> None:
        """Make ``thread`` runnable again, no earlier than ``at_ns``."""
        if thread.state is ThreadState.DONE:
            return
        if at_ns is not None:
            thread.advance_to(at_ns)
        if thread.state is ThreadState.BLOCKED:
            thread.state = ThreadState.RUNNABLE
            self._push(thread)
            if self.tracer is not None:
                self.tracer.emit(
                    "thread.wake", ts_ns=thread.clock_ns, thread_id=thread.thread_id
                )

    # -- run loop ----------------------------------------------------------

    def run(self, until_ns: Optional[float] = None, max_steps: Optional[int] = None) -> float:
        """Advance the simulation; returns the final simulated time.

        Stops when all threads are done, when every runnable thread's clock
        exceeds ``until_ns``, or after ``max_steps`` thread steps.  Raises
        :class:`SimulationError` on deadlock (live threads, none runnable).

        The pop and step logic is inlined here: this loop runs once per
        workload operation and is the simulator's outermost hot path.  The
        step counter lives in a local and is written back in ``finally`` so
        it stays correct when a fault injector's ``PowerFailure`` (or a
        workload exception) propagates out mid-run.  ``self._push`` stays a
        method call because components woken during ``next(body)`` push
        through it concurrently with this loop.
        """
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        runnable = ThreadState.RUNNABLE
        steps = self._steps
        try:
            while True:
                if max_steps is not None and steps >= max_steps:
                    break
                # Skip-scan pop: drop stale lazy-deleted entries (blocked,
                # done, or superseded threads) without touching them.
                thread = None
                while heap:
                    clock_ns, sequence, candidate = heappop(heap)
                    if candidate.state is not runnable:
                        continue  # stale entry for a blocked/done thread
                    if sequence != candidate._sequence:
                        continue  # superseded by a later push
                    if candidate.clock_ns > clock_ns:
                        # The thread's clock moved while it was queued (e.g.
                        # it was charged rollback latency by a conflict
                        # winner); re-sort it at its new time instead of
                        # running it early.
                        self._push(candidate)
                        continue
                    thread = candidate
                    break
                if thread is None:
                    if any(t.state is ThreadState.BLOCKED for t in self._threads):
                        raise SimulationError(
                            "deadlock: blocked threads remain but none are runnable"
                        )
                    break
                if until_ns is not None and thread.clock_ns >= until_ns:
                    # Smallest clock already past the horizon: everyone is.
                    self._push(thread)
                    break
                steps += 1
                if self.fault_injector is not None:
                    self.fault_injector.on_engine_step(thread.clock_ns)
                body = thread._body
                if body is None:
                    body = thread._ensure_body()
                try:
                    next(body)
                except StopIteration:
                    thread.state = ThreadState.DONE
                    if self.tracer is not None:
                        self.tracer.emit(
                            "thread.done",
                            ts_ns=thread.clock_ns,
                            thread_id=thread.thread_id,
                        )
                    continue
                if thread.state is runnable:
                    # Inlined self._push: one push per step, worth skipping
                    # the method call.  wake() calls during next(body) went
                    # through self._push and already advanced the counter.
                    sequence = self._push_count + 1
                    self._push_count = sequence
                    thread._sequence = sequence
                    heappush(heap, (thread.clock_ns, sequence, thread))
                # A blocked thread is re-queued by wake().
        finally:
            self._steps = steps
        return self.now()

    def now(self) -> float:
        """The frontier of simulated time: max clock over all threads."""
        if not self._threads:
            return 0.0
        return max(t.clock_ns for t in self._threads)

    def min_runnable_clock(self) -> Optional[float]:
        runnable = [
            t.clock_ns for t in self._threads if t.state is ThreadState.RUNNABLE
        ]
        if not runnable:
            return None
        return min(runnable)

    def all_done(self) -> bool:
        return all(t.state is ThreadState.DONE for t in self._threads)


class EpochStats:
    """Counters for the epoch-batched execution core (``engine="batched"``).

    An *epoch* is one fused block dispatch: the set of memory operations a
    thread issues at a single scheduler step (one generator resumption) that
    the :class:`repro.htm.batch.BatchDispatcher` proved free of ordering
    hazards and flushed through the fused kernels in one call.  Epochs never
    span scheduler steps, which is why batched interleaving is identical to
    scalar interleaving by construction — the min-clock run loop above is
    shared verbatim.

    ``scalar_ops`` counts operations the dependency fence forced back onto
    the scalar single-step path; ``fences`` records why, keyed by reason
    (``"tracer"``, ``"capture"``, ``"fault"``, ``"bandwidth"``,
    ``"narrow"``, ``"conflict"``, ...).
    """

    __slots__ = ("epochs", "batched_ops", "scalar_ops", "fences")

    def __init__(self) -> None:
        self.epochs = 0
        self.batched_ops = 0
        self.scalar_ops = 0
        self.fences: dict = {}

    # -- recording (called from the dispatcher's hot paths) -----------------

    def note_flush(self, width: int) -> None:
        """One epoch of ``width`` operations went through a fused path."""
        self.epochs += 1
        self.batched_ops += width

    def note_scalar(self, width: int, reason: str) -> None:
        """``width`` operations fell back to scalar single-step dispatch."""
        self.scalar_ops += width
        fences = self.fences
        fences[reason] = fences.get(reason, 0) + 1

    # -- derived ------------------------------------------------------------

    @property
    def mean_batch_width(self) -> float:
        return self.batched_ops / self.epochs if self.epochs else 0.0

    @property
    def scalar_fallback_ratio(self) -> float:
        total = self.batched_ops + self.scalar_ops
        return self.scalar_ops / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "epochs": self.epochs,
            "batched_ops": self.batched_ops,
            "scalar_ops": self.scalar_ops,
            "mean_batch_width": self.mean_batch_width,
            "scalar_fallback_ratio": self.scalar_fallback_ratio,
            "fences": dict(sorted(self.fences.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochStats(epochs={self.epochs}, "
            f"width={self.mean_batch_width:.1f}, "
            f"fallback={self.scalar_fallback_ratio:.1%})"
        )


class EpochEngine(Engine):
    """The event engine under ``engine="batched"``.

    Scheduling is inherited from :class:`Engine` unchanged: epochs are
    formed *within* a thread step (see :class:`EpochStats`), so the popped
    thread order, clock arithmetic, and fault/tracer hook sites are the
    scalar engine's own code — not a reimplementation that could drift.
    The subclass only adds the epoch counter surface the dispatcher reports
    into.
    """

    def __init__(self) -> None:
        super().__init__()
        self.epoch_stats = EpochStats()


def run_threads(bodies: Iterable[Callable[[SimThread], ThreadBody]]) -> Engine:
    """Convenience: build an engine from body factories and run it."""
    engine = Engine()
    for index, factory in enumerate(bodies):
        engine.add_thread(SimThread(index, f"t{index}", factory))
    engine.run()
    return engine
