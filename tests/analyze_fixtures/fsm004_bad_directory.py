"""BAD fixture: a directory whose dispatch never reports conflicts."""


class _Entry:
    def __init__(self):
        self.owner = None
        self.sharers = []


class Directory:
    def __init__(self):
        self._entries = {}

    def record_access(self, line_addr, tx_id, is_write):
        entry = self._entries.setdefault(line_addr, _Entry())
        if is_write:
            entry.owner = tx_id
        elif tx_id not in entry.sharers:
            entry.sharers.append(tx_id)

    def check_access(self, line_addr, tx_id, is_write):
        return None
