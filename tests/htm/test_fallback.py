"""Tests for the fallback lock."""

from __future__ import annotations

import pytest

from repro.htm.fallback import FallbackLock, FallbackLockTable


class TestFallbackLock:
    def test_acquire_release(self):
        lock = FallbackLock()
        assert not lock.locked
        lock.acquire(thread_id=3, now_ns=100.0)
        assert lock.locked
        assert lock.holder == 3
        lock.release(3)
        assert not lock.locked

    def test_double_acquire_asserts(self):
        lock = FallbackLock()
        lock.acquire(1, 0.0)
        with pytest.raises(AssertionError):
            lock.acquire(2, 0.0)

    def test_release_by_non_holder_asserts(self):
        lock = FallbackLock()
        lock.acquire(1, 0.0)
        with pytest.raises(AssertionError):
            lock.release(2)

    def test_acquisition_count(self):
        lock = FallbackLock()
        for i in range(3):
            lock.acquire(i, float(i))
            lock.release(i)
        assert lock.acquisitions == 3


class TestFallbackLockTable:
    def test_per_process_locks(self):
        table = FallbackLockTable()
        a = table.lock_for(1)
        b = table.lock_for(2)
        assert a is not b
        assert table.lock_for(1) is a

    def test_total_acquisitions(self):
        table = FallbackLockTable()
        table.lock_for(1).acquire(0, 0.0)
        table.lock_for(1).release(0)
        table.lock_for(2).acquire(1, 0.0)
        table.lock_for(2).release(1)
        assert table.total_acquisitions() == 2
