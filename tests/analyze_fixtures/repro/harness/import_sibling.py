"""GOOD fixture: a sibling module whose name shadows a layered package.

``from .cache import ...`` inside ``harness/`` is ``repro.harness.cache``
— the harness's own result cache — not the top-level ``cache`` package
(which harness may not import).  Only a two-dot import climbs the tree.
"""

from .cache import ResultCache


def open_cache(root):
    return ResultCache(root)
