"""Unit tests for the ring-buffer tracer and the event type."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import TraceEvent, Tracer
from repro.obs.tracer import DEFAULT_CAPACITY, detach_tracer


class TestTracer:
    def test_emit_and_read_back_in_order(self):
        tracer = Tracer()
        tracer.emit("tx.begin", ts_ns=1.0, tx_id=1)
        tracer.emit("tx.commit", ts_ns=2.0, tx_id=1)
        kinds = [event.kind for event in tracer.events()]
        assert kinds == ["tx.begin", "tx.commit"]
        assert len(tracer) == 2

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.emit("tx.begin", ts_ns=float(index), tx_id=index)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        # Oldest events were dropped; the newest four survive.
        assert [event.tx_id for event in tracer.events()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_default_capacity_is_bounded(self):
        assert Tracer().capacity == DEFAULT_CAPACITY

    def test_timeless_emit_inherits_last_stamped_time(self):
        tracer = Tracer()
        tracer.emit("tx.commit.phase", ts_ns=42.0, tx_id=1)
        tracer.emit("log.append", tx_id=1, log="nvm")  # no ts_ns
        events = tracer.events()
        assert events[1].ts_ns == 42.0

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.emit("tx.begin", ts_ns=float(index))
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        tracer.emit("log.append")
        assert tracer.events()[0].ts_ns == 0.0


class TestTraceEvent:
    def test_payload_is_sorted_and_hashable(self):
        event = TraceEvent("tx.abort", 1.0, tx_id=1, data=(("a", 1), ("b", 2)))
        assert event.get("a") == 1
        assert event.get("missing", "x") == "x"
        assert event.payload() == {"a": 1, "b": 2}
        hash(event)  # frozen dataclass with tuple payload

    def test_emit_sorts_kwargs_deterministically(self):
        tracer = Tracer()
        tracer.emit("tx.abort", ts_ns=0.0, zeta=1, alpha=2)
        assert tracer.events()[0].data == (("alpha", 2), ("zeta", 1))

    def test_events_survive_pickling(self):
        tracer = Tracer()
        tracer.emit("conflict.resolve", ts_ns=3.0, tx_id=4, victims=(7, 8))
        clone = pickle.loads(pickle.dumps(tracer.events()))
        assert clone == tracer.events()

    def test_to_dict_is_flat_and_json_safe(self):
        event = TraceEvent(
            "conflict.resolve", 5.0, tx_id=2, data=(("victims", (3, 4)),)
        )
        out = event.to_dict()
        assert out == {
            "kind": "conflict.resolve",
            "ts_ns": 5.0,
            "tx_id": 2,
            "victims": [3, 4],
        }


class TestAttachDetach:
    def test_attach_arms_and_detach_disarms_every_hook(self, tiny_spec):
        from repro.harness.runner import build_system
        from repro.obs import attach_tracer

        system = build_system(tiny_spec)
        tracer = Tracer()
        attach_tracer(system, tracer)
        hooks = [
            system.htm,
            system.engine,
            system.hierarchy,
            system.controller,
            system.controller.dram_log,
            system.controller.nvm_log,
        ]
        assert all(component.tracer is tracer for component in hooks)
        detach_tracer(system)
        assert all(component.tracer is None for component in hooks)
