"""Tests for the statistics registry."""

from __future__ import annotations

from repro.sim.stats import Histogram, StatsRegistry, decompose, ratio


class TestCounters:
    def test_incr_and_read(self):
        stats = StatsRegistry()
        stats.incr("tx.commits")
        stats.incr("tx.commits", 4)
        assert stats.counter("tx.commits") == 5

    def test_missing_counter_is_zero(self):
        assert StatsRegistry().counter("nope") == 0

    def test_prefix_query(self):
        stats = StatsRegistry()
        stats.incr("tx.aborts.capacity", 2)
        stats.incr("tx.aborts.false_positive", 3)
        stats.incr("tx.commits", 1)
        grouped = stats.counters_with_prefix("tx.aborts.")
        assert grouped == {
            "tx.aborts.capacity": 2,
            "tx.aborts.false_positive": 3,
        }

    def test_snapshot_is_a_copy(self):
        stats = StatsRegistry()
        stats.incr("x")
        snap = stats.snapshot()
        stats.incr("x")
        assert snap["x"] == 1


class TestSamples:
    def test_record_and_mean(self):
        stats = StatsRegistry()
        for v in (1.0, 2.0, 3.0):
            stats.record("latency", v)
        assert stats.mean("latency") == 2.0
        assert stats.samples("latency") == [1.0, 2.0, 3.0]

    def test_mean_of_empty_is_zero(self):
        assert StatsRegistry().mean("nothing") == 0.0

    def test_samples_returns_copy(self):
        stats = StatsRegistry()
        stats.record("s", 1.0)
        stats.samples("s").append(99.0)
        assert stats.samples("s") == [1.0]


class TestMerge:
    def test_merge_counters_and_samples(self):
        a = StatsRegistry()
        b = StatsRegistry()
        a.incr("n", 1)
        b.incr("n", 2)
        b.incr("m", 5)
        a.record("s", 1.0)
        b.record("s", 3.0)
        a.merge(b)
        assert a.counter("n") == 3
        assert a.counter("m") == 5
        assert a.mean("s") == 2.0

    def test_merge_preserves_histograms(self):
        """Regression: merge used to silently drop every histogram of
        ``other``, so merged worker registries lost their latency data."""
        a = StatsRegistry()
        b = StatsRegistry()
        a.histogram("tx.latency_ns").record(4.0)
        b.histogram("tx.latency_ns").record(100.0)
        b.histogram("only_in_b").record(7.0)
        a.merge(b)
        merged = a.histogram("tx.latency_ns")
        assert merged.count == 2
        assert merged.mean == 52.0
        assert merged.max == 100.0
        assert a.histogram("only_in_b").count == 1
        assert "only_in_b" in a.histograms()

    def test_merge_matches_single_registry_run(self):
        """Splitting samples across registries and merging must equal one
        registry that saw everything — bucket-wise."""
        values = [0.0, 0.5, 1.0, 3.0, 17.0, 64.0, 1e6]
        whole = StatsRegistry()
        left, right = StatsRegistry(), StatsRegistry()
        for index, value in enumerate(values):
            whole.histogram("h").record(value)
            (left if index % 2 == 0 else right).histogram("h").record(value)
        left.merge(right)
        merged = left.histogram("h")
        reference = whole.histogram("h")
        assert merged.nonzero_buckets() == reference.nonzero_buckets()
        assert merged.count == reference.count
        assert merged.mean == reference.mean
        assert merged.max == reference.max
        assert merged.percentile(0.5) == reference.percentile(0.5)


class TestHistogramMerge:
    def test_bucket_wise_addition(self):
        a, b = Histogram(), Histogram()
        a.record(2.0)
        b.record(3.0)
        b.record(500.0)
        a.merge(b)
        assert dict(a.nonzero_buckets())[1] == 2
        assert a.count == 3
        assert a.max == 500.0

    def test_merge_grows_to_wider_histogram(self):
        small, big = Histogram(buckets=4), Histogram(buckets=8)
        small.record(1e18)  # clamped into small's last bucket (index 3)
        big.record(100.0)   # index 6
        small.merge(big)
        buckets = dict(small.nonzero_buckets())
        assert buckets == {3: 1, 6: 1}

    def test_merge_of_empty_is_identity(self):
        a = Histogram()
        a.record(5.0)
        before = (a.count, a.mean, a.max, a.nonzero_buckets())
        a.merge(Histogram())
        assert (a.count, a.mean, a.max, a.nonzero_buckets()) == before


class TestHelpers:
    def test_ratio(self):
        assert ratio(1, 2) == 0.5
        assert ratio(0, 0) == 0.0
        assert ratio(5, 0) == 0.0

    def test_decompose(self):
        parts = decompose({"a": 1, "b": 3}, 4)
        assert parts == {"a": 0.25, "b": 0.75}

    def test_decompose_zero_total(self):
        assert decompose({"a": 1}, 0) == {"a": 0.0}
