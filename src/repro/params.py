"""Simulation configuration, mirroring Table III of the paper.

The defaults reproduce the paper's machine: 16 in-order cores at 2 GHz, a
32 KB 8-way private L1 per core, a 16 MB 16-way shared LLC, DRAM at 82 ns,
and NVM at 175 ns read / 94 ns write (Optane-style asymmetry, where writes
complete at the controller's write-pending queue under ADR).

Because a pure-Python block-level simulator is orders of magnitude slower
than gem5, every size-like quantity accepts a *scale* factor.  Scaling
shrinks caches, transaction footprints, and signature widths **together**, so
the footprint-to-cache ratio — which is what determines overflow and conflict
behaviour — is preserved.  ``MachineConfig.scaled(1/16)`` is the harness
default; ``scaled(1)`` is paper scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from .errors import ConfigError

#: Cache line size in bytes.  Fixed for the whole model (the paper's gem5
#: configuration uses 64-byte blocks).
LINE_SIZE = 64

#: Word size in bytes; the heap is word-addressable like a 64-bit machine.
WORD_SIZE = 8

#: Words per cache line.
WORDS_PER_LINE = LINE_SIZE // WORD_SIZE


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache."""

    size_bytes: int
    ways: int
    line_size: int = LINE_SIZE

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.ways > 0, "cache associativity must be positive")
        _require(self.line_size > 0, "line size must be positive")
        _require(
            self.size_bytes % (self.ways * self.line_size) == 0,
            f"cache size {self.size_bytes} is not divisible by "
            f"ways*line ({self.ways}*{self.line_size})",
        )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class LatencyConfig:
    """Access latencies in nanoseconds (Table III)."""

    l1_ns: float = 1.5
    llc_ns: float = 15.0
    dram_ns: float = 82.0
    nvm_read_ns: float = 175.0
    nvm_write_ns: float = 94.0
    #: The DRAM cache in front of NVM (Jeong et al., MICRO'18) is built from
    #: DRAM, so it inherits DRAM timing.
    dram_cache_ns: float = 82.0
    #: Fixed non-memory cost charged per data-structure operation, modelling
    #: the in-order core's compute between memory accesses.
    cpu_op_ns: float = 2.0
    #: Line-transfer (bandwidth) terms, used only when
    #: ``MemoryConfig.model_bandwidth`` is enabled: 64 B at ~25 GB/s DRAM
    #: and ~4 GB/s Optane-class NVM.
    dram_line_transfer_ns: float = 2.5
    nvm_line_transfer_ns: float = 16.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            _require(getattr(self, field.name) >= 0, f"{field.name} must be >= 0")


@dataclass(frozen=True)
class MemoryConfig:
    """Sizes of the simulated DRAM and NVM regions and their log areas.

    The log areas are reserved at system initialisation and are accessible
    only to the memory controllers, exactly as Section IV-B describes.
    """

    dram_bytes: int = 1 << 30
    nvm_bytes: int = 1 << 30
    dram_log_bytes: int = 64 << 20
    nvm_log_bytes: int = 64 << 20
    #: Capacity of the DRAM cache that buffers early-evicted NVM blocks.
    dram_cache_bytes: int = 4 << 20
    dram_cache_ways: int = 16
    #: Model finite channel bandwidth (queuing) for off-chip accesses.
    model_bandwidth: bool = False

    def __post_init__(self) -> None:
        _require(self.dram_bytes > 0, "dram_bytes must be positive")
        _require(self.nvm_bytes > 0, "nvm_bytes must be positive")
        _require(self.dram_log_bytes > 0, "dram_log_bytes must be positive")
        _require(self.nvm_log_bytes > 0, "nvm_log_bytes must be positive")
        _require(self.dram_cache_bytes > 0, "dram_cache_bytes must be positive")


@dataclass(frozen=True)
class SignatureConfig:
    """Per-core read/write address-signature configuration.

    ``bits`` is the advertised size used in the paper's labels (512_sig,
    1k_sig, 4k_sig).  ``effective_bits`` is the width after applying the
    machine scale factor so that Bloom-filter occupancy — and therefore the
    false-positive rate — matches the paper-scale behaviour.
    """

    bits: int = 1024
    hash_functions: int = 4
    #: Partition the filter into one bank per hash function (the SRAM
    #: organisation of LogTM-SE/Bulk) instead of one flat array.
    banked: bool = False

    def __post_init__(self) -> None:
        _require(self.bits >= 8, "signature must have at least 8 bits")
        _require(self.hash_functions >= 1, "need at least one hash function")
        if self.banked:
            _require(
                self.bits % self.hash_functions == 0,
                "banked signatures need bits divisible by hash_functions",
            )

    def effective_bits(self, scale: float) -> int:
        return max(8, int(round(self.bits * scale)))

    @property
    def label(self) -> str:
        if self.bits % 1024 == 0:
            return f"{self.bits // 1024}k"
        return str(self.bits)


@dataclass(frozen=True)
class MachineConfig:
    """The full simulated machine (Table III defaults at ``scale=1``)."""

    cores: int = 16
    clock_ghz: float = 2.0
    l1: CacheGeometry = CacheGeometry(size_bytes=32 << 10, ways=8)
    llc: CacheGeometry = CacheGeometry(size_bytes=16 << 20, ways=16)
    latency: LatencyConfig = LatencyConfig()
    memory: MemoryConfig = MemoryConfig()
    #: Linear shrink factor applied to caches / footprints / signatures.
    scale: float = 1.0

    def __post_init__(self) -> None:
        _require(self.cores > 0, "cores must be positive")
        _require(self.clock_ghz > 0, "clock must be positive")
        _require(0 < self.scale <= 1, "scale must be in (0, 1]")

    @staticmethod
    def scaled(
        scale: float, cores: int = 16, cache_scale: Optional[float] = None
    ) -> "MachineConfig":
        """Build a machine whose caches are shrunk by ``cache_scale``.

        ``scale`` governs footprints and signature widths; ``cache_scale``
        (default: equal to ``scale``) governs the cache geometries.
        Associativity is preserved; sizes are rounded to keep the
        sets-times-ways-times-line invariant.

        The harness shrinks caches *more* than footprints (``scale / 4``)
        as contention compensation: a block-level model charges only memory
        latency, so transactions live ~4x shorter relative to co-runner
        eviction traffic than on the paper's in-order cores executing real
        instruction streams.  Shrinking the caches restores the paper's
        footprint-pressure-per-transaction-lifetime.
        """
        _require(0 < scale <= 1, "scale must be in (0, 1]")
        if cache_scale is None:
            cache_scale = scale
        _require(0 < cache_scale <= 1, "cache_scale must be in (0, 1]")

        def shrink(geometry: CacheGeometry) -> CacheGeometry:
            target = max(1, int(round(geometry.num_sets * cache_scale)))
            return CacheGeometry(
                size_bytes=target * geometry.ways * geometry.line_size,
                ways=geometry.ways,
                line_size=geometry.line_size,
            )

        base = MachineConfig()
        return MachineConfig(
            cores=cores,
            clock_ghz=base.clock_ghz,
            l1=shrink(base.l1),
            llc=shrink(base.llc),
            latency=base.latency,
            memory=dataclasses.replace(
                base.memory,
                dram_cache_bytes=max(
                    LINE_SIZE * base.memory.dram_cache_ways,
                    int(base.memory.dram_cache_bytes * scale),
                ),
            ),
            scale=scale,
        )


class HTMDesign:
    """String constants naming the evaluated designs (Section V)."""

    LLC_BOUNDED = "llc_bounded"
    SIGNATURE_ONLY = "signature_only"
    UHTM = "uhtm"
    IDEAL = "ideal"

    ALL = (LLC_BOUNDED, SIGNATURE_ONLY, UHTM, IDEAL)


class DramLogPolicy:
    """Logging policy for LLC-overflowed DRAM blocks (Figure 10 ablation)."""

    UNDO = "undo"
    REDO = "redo"

    ALL = (UNDO, REDO)


@dataclass(frozen=True)
class HTMConfig:
    """Configuration of the transactional-memory design under test."""

    design: str = HTMDesign.UHTM
    signature: SignatureConfig = SignatureConfig()
    #: Signature isolation: confine conflict checks to the requester's
    #: conflict domain (the ``_opt`` labels in the paper's figures).
    isolation: bool = True
    #: Logging policy for LLC-overflowed DRAM data (Figure 10).
    dram_log_policy: str = DramLogPolicy.UNDO
    #: Conflict-resolution policy: "table2" (the paper's) or "oldest_wins"
    #: (timestamp-ordering extension; see repro.htm.conflict).
    resolution: str = "table2"
    #: Retries before falling back to the serialised slow path.
    max_retries: int = 8
    #: Mean of the randomised exponential backoff after an abort, ns.
    backoff_ns: float = 500.0
    #: Upper bound for the randomised backoff, ns.
    backoff_max_ns: float = 16_000.0

    def __post_init__(self) -> None:
        _require(self.design in HTMDesign.ALL, f"unknown design {self.design!r}")
        _require(
            self.dram_log_policy in DramLogPolicy.ALL,
            f"unknown DRAM log policy {self.dram_log_policy!r}",
        )
        _require(
            self.resolution in ("table2", "oldest_wins"),
            f"unknown resolution policy {self.resolution!r}",
        )
        _require(self.max_retries >= 0, "max_retries must be >= 0")
        _require(self.backoff_ns >= 0, "backoff_ns must be >= 0")
        _require(
            self.backoff_max_ns >= self.backoff_ns,
            "backoff_max_ns must be >= backoff_ns",
        )

    @property
    def label(self) -> str:
        """The figure label used in the paper, e.g. ``1k_opt``."""
        if self.design == HTMDesign.LLC_BOUNDED:
            return "LLC-Bounded"
        if self.design == HTMDesign.SIGNATURE_ONLY:
            return f"SigOnly-{self.signature.label}"
        if self.design == HTMDesign.IDEAL:
            return "Ideal"
        suffix = "opt" if self.isolation else "sig"
        return f"{self.signature.label}_{suffix}"
