"""Tests for the submit-and-watch client and the ServiceExecutor backend."""

from __future__ import annotations

import threading

import pytest

from serve_grids import tiny_grid

from repro.harness.cache import ResultCache
from repro.harness.export import to_json
from repro.harness.figures import fig2
from repro.harness.parallel import run_grid, run_keyed
from repro.serve.client import ServeClient, ServiceExecutor
from repro.serve.jobstore import ServeError
from repro.serve.worker import Worker


def drain_in_thread(spool, **kwargs):
    worker = Worker(spool)
    thread = threading.Thread(
        target=worker.drain, kwargs={"timeout_s": 60, **kwargs}, daemon=True
    )
    thread.start()
    return worker, thread


def serve_in_thread(spool):
    """A service-mode worker thread (runs until the test process exits)."""
    worker = Worker(spool)
    thread = threading.Thread(
        target=worker.run_forever, kwargs={"poll_s": 0.02}, daemon=True
    )
    thread.start()
    return worker, thread


class TestSubmission:
    def test_unknown_figure_is_rejected(self, spool):
        with pytest.raises(ServeError, match="fig2"):
            ServeClient(spool).submit_figure("figNaN")

    def test_submit_figure_records_provenance(self, spool):
        client = ServeClient(spool)
        meta = client.submit_figure("fig2", quick=True, scale=1 / 64, seed=3)
        assert meta.figure == "fig2"
        assert meta.scale == 1 / 64 and meta.seed == 3
        assert meta.total_points == 6

    def test_watch_timeout_without_workers(self, spool):
        client = ServeClient(spool)
        meta = client.submit_points(tiny_grid(2), title="t")
        with pytest.raises(ServeError, match="worker fleet"):
            client.watch(meta.campaign_id, timeout_s=0.2, poll_s=0.05)


class TestResults:
    def test_results_in_submission_order(self, spool):
        grid = tiny_grid(4)
        client = ServeClient(spool)
        meta = client.submit_points(grid, title="t")
        Worker(spool).drain(timeout_s=30)
        served = client.results(meta.campaign_id)
        direct = run_grid(grid)
        assert [r.label for r in served] == [r.label for r in direct]
        assert served == direct

    def test_keyed_results_round_trip(self, spool):
        grid = tiny_grid(3)
        client = ServeClient(spool)
        meta = client.submit_points(grid, title="t")
        Worker(spool).drain(timeout_s=30)
        keyed = client.keyed_results(meta.campaign_id)
        assert set(keyed) == {point.key for point in grid}

    def test_incomplete_campaign_names_the_missing_point(self, spool):
        client = ServeClient(spool)
        meta = client.submit_points(tiny_grid(2), title="t")
        with pytest.raises(ServeError, match=r"\[0\]"):
            client.results(meta.campaign_id)

    def test_watch_streams_each_point_once(self, spool):
        client = ServeClient(spool)
        meta = client.submit_points(tiny_grid(3), title="t")
        seen = []
        worker, thread = drain_in_thread(spool)
        client.watch(
            meta.campaign_id,
            timeout_s=30,
            poll_s=0.02,
            progress=lambda status, newly: seen.extend(newly),
        )
        thread.join(timeout=10)
        assert sorted(index for index, _ in seen) == [0, 1, 2]

    def test_watch_surfaces_failures(self, spool):
        from serve_grids import tiny_spec
        from repro.harness.parallel import GridPoint

        client = ServeClient(spool)
        meta = client.submit_points(
            [GridPoint(spec=tiny_spec(max_steps=1))], title="t"
        )
        worker, thread = drain_in_thread(spool)
        thread.join(timeout=30)
        with pytest.raises(ServeError, match="failed point"):
            client.watch(meta.campaign_id, timeout_s=10, poll_s=0.02)


class TestFigureResults:
    def test_byte_identical_to_direct_driver(self, spool):
        client = ServeClient(spool)
        meta = client.submit_figure("fig2", quick=True, scale=1 / 64, seed=3)
        Worker(spool).drain(timeout_s=120)
        served = client.figure_results(meta.campaign_id)
        direct = fig2(quick=True, scale=1 / 64, seed=3)
        assert to_json(served) == to_json([direct])

    def test_non_figure_campaign_is_refused(self, spool):
        client = ServeClient(spool)
        meta = client.submit_points(tiny_grid(1), title="t")
        Worker(spool).drain(timeout_s=30)
        with pytest.raises(ServeError, match="not submitted from a figure"):
            client.figure_results(meta.campaign_id)

    def test_incomplete_figure_campaign_is_refused(self, spool):
        client = ServeClient(spool)
        meta = client.submit_figure("fig2", quick=True, scale=1 / 64, seed=3)
        with pytest.raises(ServeError, match="not complete"):
            client.figure_results(meta.campaign_id)


class TestServiceExecutor:
    def test_run_keyed_through_the_service(self, spool):
        grid = tiny_grid(4)
        serve_in_thread(spool)
        executor = ServiceExecutor(spool, timeout_s=60, poll_s=0.02)
        served = run_keyed(grid, executor=executor)
        direct = run_keyed(grid)
        assert served == direct

    def test_figure_driver_through_the_service(self, spool):
        serve_in_thread(spool)
        executor = ServiceExecutor(spool, timeout_s=120, poll_s=0.02)
        served = fig2(quick=True, scale=1 / 64, seed=3, executor=executor)
        direct = fig2(quick=True, scale=1 / 64, seed=3)
        assert to_json([served]) == to_json([direct])

    def test_caller_cache_is_mirrored(self, spool, tmp_path):
        grid = tiny_grid(3)
        serve_in_thread(spool)
        local = ResultCache(tmp_path / "local-cache")
        executor = ServiceExecutor(spool, timeout_s=60, poll_s=0.02)
        run_keyed(grid, cache=local, executor=executor)
        # The caller-side cache ends up as warm as a local run would have
        # left it, without having simulated anything itself.
        for point in grid:
            assert local.get(point.spec, point.label) is not None
        assert local.stats.simulations == 0

    def test_second_run_is_all_cache_hits(self, spool):
        grid = tiny_grid(3)
        serve_in_thread(spool)
        executor = ServiceExecutor(spool, timeout_s=60, poll_s=0.02)
        from repro.harness.parallel import run_grid_detailed

        first = run_grid_detailed(grid, executor=executor)
        second = run_grid_detailed(grid, executor=executor)
        assert first.simulated == 3 and first.cache_hits == 0
        assert second.simulated == 0 and second.cache_hits == 3
        assert all(run.cached for run in second.runs)
        assert first.results == second.results
