"""The protocol rules (ATOM005/PKL006/CLK008/TRC009) over fixtures and
mutations of the real tree."""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analyze import run_analysis

FIXTURES = Path(__file__).parent.parent / "analyze_fixtures"
REPRO_ROOT = Path(repro.__file__).parent


def findings_for(name: str, rule: str):
    report = run_analysis([FIXTURES / name], rules=[rule])
    return report.findings


class TestAtom005:
    def test_bad_fixture_flags_every_class(self):
        messages = [f.message for f in findings_for("atom005_bad.py", "ATOM005")]
        assert len(messages) == 4
        assert any("direct write to the published path" in m for m in messages)
        assert any("never renamed into place" in m for m in messages)
        assert any("rename-before-flush" in m for m in messages)
        assert any("without a token read-back" in m for m in messages)

    def test_good_fixture_is_clean(self):
        assert findings_for("atom005_good.py", "ATOM005") == []

    def test_blanket_net_is_warning_tier(self):
        findings = findings_for("repro/serve/blanket_bad.py", "ATOM005")
        assert [f.severity for f in findings] == ["warning"]
        assert "durability-critical scope" in findings[0].message

    def test_cross_file_propagation_flags_the_helper(self, tmp_path):
        pkg = tmp_path / "repro" / "spool"
        pkg.mkdir(parents=True)
        (pkg / "helper.py").write_text(
            "def save(path, payload):\n"
            "    path.write_text(payload)\n",
            encoding="utf-8",
        )
        (pkg / "caller.py").write_text(
            "from .helper import save\n"
            "\n"
            "\n"
            "def publish(store, campaign_id):\n"
            "    save(store.points_path(campaign_id), 'records')\n",
            encoding="utf-8",
        )
        report = run_analysis([tmp_path / "repro"], rules=["ATOM005"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path.endswith("helper.py")
        assert "points_path()" in finding.message


class TestAtom005Mutations:
    """The acceptance-criteria mutations: break the real protocol, watch
    the rule catch it."""

    def test_real_jobstore_is_clean(self, tmp_path):
        source = (REPRO_ROOT / "serve" / "jobstore.py").read_text(
            encoding="utf-8"
        )
        copy = tmp_path / "jobstore.py"
        copy.write_text(source, encoding="utf-8")
        assert run_analysis([copy], rules=["ATOM005"]).findings == []

    def test_deleting_the_publish_rename_fires(self, tmp_path):
        source = (REPRO_ROOT / "serve" / "jobstore.py").read_text(
            encoding="utf-8"
        )
        needle = "        tmp.replace(points_path)\n"
        assert needle in source
        mutated = tmp_path / "jobstore.py"
        mutated.write_text(source.replace(needle, ""), encoding="utf-8")
        messages = [
            f.message
            for f in run_analysis([mutated], rules=["ATOM005"]).findings
        ]
        assert any(
            "'tmp' stages a published path but is never renamed" in m
            for m in messages
        )

    def test_dropping_the_steal_read_back_fires(self, tmp_path):
        source = (REPRO_ROOT / "serve" / "queue.py").read_text(
            encoding="utf-8"
        )
        needle = "        current = self.peek_lease(campaign_id, index)\n"
        assert needle in source
        mutated = tmp_path / "queue.py"
        mutated.write_text(
            source.replace(needle, "        current = lease\n"),
            encoding="utf-8",
        )
        messages = [
            f.message
            for f in run_analysis([mutated], rules=["ATOM005"]).findings
        ]
        assert any("without a token read-back" in m for m in messages)

    def test_unmutated_queue_is_clean(self, tmp_path):
        source = (REPRO_ROOT / "serve" / "queue.py").read_text(
            encoding="utf-8"
        )
        copy = tmp_path / "queue.py"
        copy.write_text(source, encoding="utf-8")
        assert run_analysis([copy], rules=["ATOM005"]).findings == []


class TestPkl006:
    def test_bad_fixture_flags_every_class(self):
        messages = [f.message for f in findings_for("pkl006_bad.py", "PKL006")]
        assert len(messages) == 5
        assert any(
            "a lambda flows into ProcessPoolExecutor.map" in m
            for m in messages
        )
        assert any(
            "the nested function 'execute' flows into "
            "ProcessPoolExecutor.submit" in m
            for m in messages
        )
        assert any("an open file handle flows into dumps()" in m for m in messages)
        assert any("a threading.Lock flows into _to_b64()" in m for m in messages)
        assert any(
            "a tracer reference flows into the pickled field JobRecord.spec"
            in m
            for m in messages
        )

    def test_good_fixture_is_clean(self):
        assert findings_for("pkl006_good.py", "PKL006") == []


class TestClk008:
    def test_direct_and_transitive_reads_flagged(self):
        messages = [
            f.message
            for f in findings_for("repro/htm/clock_bad.py", "CLK008")
        ]
        assert any("direct wall-clock read" in m for m in messages)
        assert any(
            "'step' reaches time.time()" in m
            and "via clock_bad.py:step -> clock_bad.py:_now" in m
            for m in messages
        )

    def test_cross_file_chain_is_reported(self):
        report = run_analysis(
            [
                FIXTURES / "repro" / "htm" / "clock_xfile_bad.py",
                FIXTURES / "repro" / "harness" / "hostinfo.py",
            ],
            rules=["CLK008"],
        )
        messages = [f.message for f in report.findings]
        assert any(
            "clock_xfile_bad.py:stamp -> hostinfo.py:host_seconds" in m
            for m in messages
        )
        # The finding lands in the sim-critical caller, not the harness file.
        assert all(
            f.path.endswith("clock_xfile_bad.py") for f in report.findings
        )

    def test_funnel_absorbs_the_taint(self):
        report = run_analysis(
            [
                FIXTURES / "repro" / "htm" / "clock_ok.py",
                FIXTURES / "repro" / "harness" / "timer.py",
            ],
            rules=["CLK008"],
        )
        assert report.findings == []


class TestTrc009:
    def test_bad_fixture_flags_both_classes(self):
        messages = [f.message for f in findings_for("trc009_bad.py", "TRC009")]
        assert len(messages) == 3
        assert any("is not None-guarded" in m for m in messages)
        assert any(
            "emit('tx.commit') has no adjacent incr('tx.commits')" in m
            for m in messages
        )

    def test_good_fixture_is_clean(self):
        assert findings_for("trc009_good.py", "TRC009") == []
