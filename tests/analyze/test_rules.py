"""Per-rule behaviour over the good/bad fixture pairs."""

from __future__ import annotations

from pathlib import Path

from repro.analyze import run_analysis

FIXTURES = Path(__file__).parent.parent / "analyze_fixtures"


def findings_for(name: str, rule: str):
    report = run_analysis([FIXTURES / name], rules=[rule])
    return report.findings


class TestDet001:
    def test_bad_fixture_flags_every_class(self):
        messages = [f.message for f in findings_for("det001_bad.py", "DET001")]
        assert any("'import random'" in m for m in messages)
        assert any("'from time import time'" in m for m in messages)
        assert any("time() reads the wall clock" in m for m in messages)
        assert any("datetime.now()" in m for m in messages)
        assert any("(active)" in m for m in messages)
        assert any("(table.keys())" in m for m in messages)
        assert any("({3, 1, 2})" in m for m in messages)

    def test_good_fixture_is_clean(self):
        assert findings_for("det001_good.py", "DET001") == []


class TestLay002:
    def test_internals_bypass_flagged(self):
        messages = [f.message for f in findings_for("lay002_bad.py", "LAY002")]
        assert any("'.dram'" in m for m in messages)
        assert any("'.nvm_log'" in m for m in messages)

    def test_entry_points_are_clean(self):
        assert findings_for("lay002_good.py", "LAY002") == []

    def test_upward_import_flagged(self):
        messages = [
            f.message for f in findings_for("repro/htm/import_bad.py", "LAY002")
        ]
        assert any(
            "'htm' may not import from 'faults'" in m for m in messages
        )

    def test_downward_import_is_clean(self):
        assert findings_for("repro/htm/import_good.py", "LAY002") == []

    def test_sibling_module_shadowing_a_package_is_clean(self):
        """``from .cache import ...`` inside harness/ is harness.cache,
        not the top-level cache package — one dot never leaves the
        importing file's own package."""
        assert (
            findings_for("repro/harness/import_sibling.py", "LAY002") == []
        )

    def test_two_dot_import_of_the_same_name_still_flagged(self):
        messages = [
            f.message
            for f in findings_for(
                "repro/harness/import_updir_bad.py", "LAY002"
            )
        ]
        assert any(
            "'harness' may not import from 'cache'" in m for m in messages
        )


class TestHook003:
    def test_unguarded_invocations_flagged(self):
        findings = findings_for("hook003_bad.py", "HOOK003")
        roots = {f.message.split("'")[1] for f in findings}
        assert roots == {"self.fault_injector", "self.pre_compact", "injector"}

    def test_guarded_shapes_are_clean(self):
        assert findings_for("hook003_good.py", "HOOK003") == []


class TestFsm004:
    def test_total_reachable_swmr_table_is_clean(self):
        assert findings_for("fsm004_good.py", "FSM004") == []

    def test_unhandled_pair_reported(self):
        messages = [f.message for f in findings_for("fsm004_bad.py", "FSM004")]
        assert messages
        assert all("unhandled pair" in m for m in messages)
        assert any("EXCLUSIVE" in m for m in messages)

    def test_unreachable_state_reported(self):
        messages = [
            f.message for f in findings_for("fsm004_unreachable.py", "FSM004")
        ]
        assert any("unreachable" in m and "EXCLUSIVE" in m for m in messages)

    def test_silent_directory_dispatch_reported(self):
        messages = [
            f.message
            for f in findings_for("fsm004_bad_directory.py", "FSM004")
        ]
        assert messages
        assert all("dispatch gap" in m for m in messages)
