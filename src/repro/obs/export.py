"""Trace exporters: JSONL and Chrome ``trace_event`` JSON.

The Chrome format loads directly in ``chrome://tracing`` or Perfetto
(https://ui.perfetto.dev): each traced run becomes one process row, each
simulated thread one track, committed/aborted transactions are complete
("X") spans, aborts and overflows are instants, and signature saturation
renders as counter tracks.  Timestamps are microseconds in that format, so
nanosecond event times are divided by 1000.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .events import (
    LLC_OVERFLOW,
    LOG_APPEND,
    SIG_HIT,
    SIG_SATURATION,
    TX_ABORT,
    TraceEvent,
)
from .timeline import build_timelines

#: Event kinds rendered as instant ("i") markers on their thread's track.
_INSTANT_KINDS = frozenset({TX_ABORT, LLC_OVERFLOW, LOG_APPEND, SIG_HIT})


def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per line, keys sorted — byte-stable for diffing."""
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in events
    )


def write_jsonl(path: str, events: Iterable[TraceEvent]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(events))


def chrome_trace(
    runs: Sequence[Tuple[str, Sequence[TraceEvent]]],
) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from labelled event streams.

    ``runs`` is a sequence of ``(label, events)`` pairs; each pair becomes
    one process (pid) in the trace viewer.
    """
    trace_events: List[Dict[str, Any]] = []
    for pid, (label, events) in enumerate(runs):
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        timelines = build_timelines(events)
        for timeline in timelines.values():
            args: Dict[str, Any] = {"tx_id": timeline.tx_id}
            if timeline.outcome is not None:
                args["outcome"] = timeline.outcome
            if timeline.abort_reason is not None:
                args["abort_reason"] = timeline.abort_reason
            trace_events.append(
                {
                    "name": f"tx {timeline.tx_id}",
                    "cat": timeline.outcome or "inflight",
                    "ph": "X",
                    "pid": pid,
                    "tid": timeline.thread_id if timeline.thread_id is not None else 0,
                    "ts": timeline.begin_ns / 1000.0,
                    "dur": timeline.duration_ns / 1000.0,
                    "args": args,
                }
            )
        for event in events:
            if event.kind in _INSTANT_KINDS:
                trace_events.append(
                    {
                        "name": event.kind,
                        "cat": "marker",
                        "ph": "i",
                        "s": "t",
                        "pid": pid,
                        "tid": event.thread_id if event.thread_id is not None else 0,
                        "ts": event.ts_ns / 1000.0,
                        "args": event.payload(),
                    }
                )
            elif event.kind == SIG_SATURATION:
                trace_events.append(
                    {
                        "name": "signature saturation",
                        "ph": "C",
                        "pid": pid,
                        "tid": 0,
                        "ts": event.ts_ns / 1000.0,
                        "args": {
                            "read": event.get("read", 0.0),
                            "write": event.get("write", 0.0),
                        },
                    }
                )
    return {"traceEvents": trace_events, "displayTimeUnit": "ns"}


def write_chrome_trace(
    path: str, runs: Sequence[Tuple[str, Sequence[TraceEvent]]]
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(runs), handle, sort_keys=True)
        handle.write("\n")
