"""End-to-end tests for ``python -m repro profile``."""

from __future__ import annotations

import json

import pytest

from repro.perf.cli import build_report, main
from repro.perf.phases import PHASES
from repro.sim.stats import StatsRegistry


class TestProfileCli:
    def test_figure_json_report(self, capsys):
        rc = main(["fig2", "--json", "--points", "1", "--top", "5"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["target"] == "fig2"
        assert report["kind"] == "figure"
        assert report["points"] == 1
        assert report["wall_s"] > 0
        assert set(report["phases"]) == set(PHASES)
        assert report["phases"]["access"]["calls"] > 0
        assert len(report["hotspots"]) == 5
        for spot in report["hotspots"]:
            assert {"function", "file", "line", "ncalls", "tottime_s",
                    "cumtime_s"} <= set(spot)

    def test_human_report_prints_tables(self, capsys):
        rc = main(["fig2", "--points", "1", "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phases: fig2" in out
        assert "top 3 by cumtime" in out
        for phase in PHASES:
            assert phase in out

    def test_unknown_target_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["not-a-figure"])
        assert "unknown profile target" in capsys.readouterr().err

    def test_corunners_are_not_targets(self, capsys):
        with pytest.raises(SystemExit):
            main(["membound"])

    def test_detaches_after_run(self):
        original = StatsRegistry.incr
        build_report("fig2", points=1, top=3)
        assert StatsRegistry.incr is original


class TestWorkloadTarget:
    def test_workload_report(self):
        report = build_report(
            "hashmap", sort="tottime", top=8, scale=1 / 128, seed=7
        )
        assert report["kind"] == "workload"
        assert report["points"] == 1
        assert report["seed"] == 7
        assert report["phases"]["commit"]["calls"] > 0
        tottimes = [s["tottime_s"] for s in report["hotspots"]]
        assert tottimes == sorted(tottimes, reverse=True)


def test_dispatch_from_package_main(capsys):
    from repro.__main__ import main as repro_main

    rc = repro_main(["profile", "fig2", "--json", "--points", "1", "--top", "3"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["target"] == "fig2"
