"""The declared protocol tables behind the cross-file checkers.

Like :mod:`repro.analyze.layers` for LAY002, this file writes down — once,
reviewable — the conventions ATOM005/PKL006/TRC009 enforce: which calls
produce *published* paths, which helpers are the sanctioned atomic writers,
which constructor fields cross the pickle boundary, and which trace kinds
must stay count-exact against which counters.  A new spool file, pickled
field, or counted trace kind is added here, not hard-coded in a checker.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

# -- ATOM005: staged-rename publication --------------------------------------

#: Method/function names whose *result* is a published spool or cache path —
#: a path other processes resolve independently and may read at any moment.
#: Writing one directly exposes a torn file; stage to a tmp sibling and
#: ``os.replace`` it into place instead.
PUBLISHED_PATH_PRODUCERS: FrozenSet[str] = frozenset(
    {
        "path_for",       # harness/cache.py — cache entry
        "meta_path",      # serve/jobstore.py — campaign meta
        "points_path",    # serve/jobstore.py — campaign points
        "lease_path",     # serve/jobstore.py — queue lease
        "failure_path",   # serve/jobstore.py — failure marker
        "cancel_path",    # serve/jobstore.py — cancel marker
    }
)

#: The producers whose files carry an ownership token: after a steal-rename
#: the writer must read the file back and compare tokens, because a racing
#: stealer's rename can silently overwrite ours (SERVE.md, lease stealing).
LEASE_PATH_PRODUCERS: FrozenSet[str] = frozenset({"lease_path"})

#: Calls that count as the post-steal token read-back.
LEASE_READ_BACK_CALLS: FrozenSet[str] = frozenset({"peek_lease", "read_json"})

#: Helpers that already implement stage-then-rename internally; handing a
#: published path to one of these is the *sanctioned* way to write it.
ATOMIC_WRITE_HELPERS: FrozenSet[str] = frozenset(
    {"write_json_atomic", "write_text_atomic"}
)

#: Path methods that derive a staging sibling from a published path.
STAGING_DERIVATIONS: FrozenSet[str] = frozenset({"with_name", "with_suffix"})

#: Packages (plus named modules) whose direct writes are durability-critical
#: even when dataflow cannot prove the target is a published path: the spool
#: protocol's correctness rests on every file in these scopes appearing
#: atomically.
DURABILITY_CRITICAL_PACKAGES: FrozenSet[str] = frozenset({"serve"})
DURABILITY_CRITICAL_FILES = ("repro/harness/cache.py",)

# -- PKL006: the pickle boundary ---------------------------------------------

#: ``constructor name -> fields`` that are pickled verbatim into spool files
#: (serve/jobstore.py base64-encodes them with ``pickle.dumps``).
PICKLED_CONSTRUCTOR_FIELDS: Mapping[str, FrozenSet[str]] = {
    "JobRecord": frozenset({"spec", "key"}),
}

#: Functions that forward their argument into ``pickle.dumps``.
PICKLING_HELPERS: FrozenSet[str] = frozenset({"_to_b64"})

#: Executor constructors whose ``submit``/``map`` arguments cross a process
#: boundary (and therefore a pickle boundary).
PROCESS_POOL_CONSTRUCTORS: FrozenSet[str] = frozenset({"ProcessPoolExecutor"})

#: ``threading`` constructors that produce unpicklable synchronisation
#: primitives.
LOCK_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event",
     "Barrier"}
)

#: Constructors/attributes that reference a live tracer (ring buffers and
#: callbacks never survive pickling; obs/capture.py attaches per-worker
#: tracers inside the worker instead).
TRACER_CONSTRUCTORS: FrozenSet[str] = frozenset({"Tracer"})

# -- TRC009: count-exact trace kinds -----------------------------------------

#: ``trace kind -> stats counter`` pairs PR 4's forensics proved count-exact;
#: the emit and its increment must sit in the same function body so the
#: invariant survives refactors.  (``sig.hit`` is deliberately absent: its
#: counter name is conditional on the probe outcome.)
TRACE_COUNTER_KINDS: Dict[str, str] = {
    "tx.begin": "tx.begins",
    "tx.commit": "tx.commits",
    "tx.abort": "tx.aborts",
    "llc.overflow": "llc.tx_evictions",
}


def is_durability_critical(package: object, posix_path: str) -> bool:
    """Is a file in ATOM005's blanket scope (package or named module)?"""
    if package in DURABILITY_CRITICAL_PACKAGES:
        return True
    return any(posix_path.endswith(s) for s in DURABILITY_CRITICAL_FILES)
