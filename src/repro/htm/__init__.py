"""Hardware transactional memory designs.

The base machinery (:mod:`repro.htm.base`) implements the full transaction
lifecycle — begin, transactional read/write, commit, abort — over the cache
hierarchy, coherence directory, memory controller, and signature registry.
Four designs specialise its overflow handling and off-chip conflict
detection, matching Section V's comparison points:

* :class:`LLCBoundedHTM` — DHTM-like baseline: coherence-only detection,
  capacity abort when a transactional line leaves the LLC.
* :class:`SignatureOnlyHTM` — Bulk/LogTM-SE-like: address signatures checked
  on *all* coherence traffic, populated on every access.
* :class:`UHTM` — staged detection (directory on-chip, signatures checked on
  LLC misses only) with hybrid logging; ``isolation=True`` adds conflict
  domains (the paper's ``_opt`` variants).
* :class:`IdealHTM` — perfect unbounded detection (exact overflow sets, no
  false positives).
"""

from .base import HTMSystem, TxHandle
from .conflict import (
    ConflictLocation,
    Resolution,
    ResolutionPolicy,
    resolve_conflict,
    resolve_conflict_oldest_wins,
)
from .designs import IdealHTM, LLCBoundedHTM, SignatureOnlyHTM, UHTM, build_htm
from .fallback import FallbackLock
from .tss import TransactionStatusStructure, TxStatus
from .txid import TxIdAllocator

__all__ = [
    "HTMSystem",
    "TxHandle",
    "ConflictLocation",
    "Resolution",
    "ResolutionPolicy",
    "resolve_conflict",
    "resolve_conflict_oldest_wins",
    "IdealHTM",
    "LLCBoundedHTM",
    "SignatureOnlyHTM",
    "UHTM",
    "build_htm",
    "FallbackLock",
    "TransactionStatusStructure",
    "TxStatus",
    "TxIdAllocator",
]
