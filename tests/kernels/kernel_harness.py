"""The reusable differential harness for the engine equivalence tier.

A :class:`DifferentialHarness` replays one recorded op-sequence through a
*reference* object (the scalar kernel) and a *candidate* (the vectorized
twin), asserting after **every** op that both the op's output and the
objects' observable state are equal.  Divergence raises :class:`Divergence`
with the op index and both sides' values — the mutation kill-tests in
``test_mutation_kill.py`` prove that seeded kernel bugs actually trip it.

Ops are ``(name, *args)`` tuples; ``name`` resolves via ``getattr`` and is
called when callable, read when a property.  Outputs are normalised before
comparison (metadata objects to their address + flags, numpy arrays and
scalars to plain Python values) so engines may differ in *types* but never
in *meaning*.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence, Tuple


class Divergence(AssertionError):
    """The candidate engine disagreed with the reference."""


def normalize(value: Any) -> Any:
    """Engine-neutral view of an op output (or state component)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # Floats compare exactly: the contract is bit-identity, not "close".
        return value
    # CacheLineMeta (any engine): compare the observable fields.
    if hasattr(value, "line_addr") and hasattr(value, "mesi"):
        readers = value.tx_readers
        return (
            "meta",
            value.line_addr,
            value.dirty,
            value.mesi,
            value.tx_writer,
            tuple(sorted(readers)) if readers else (),
        )
    # numpy arrays / scalars: reduce to plain Python.
    if hasattr(value, "tolist"):
        listed = value.tolist()
        if isinstance(listed, list):
            return tuple(normalize(item) for item in listed)
        return normalize(listed)
    if hasattr(value, "item") and not isinstance(value, (list, tuple, dict)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return tuple(normalize(item) for item in value)
    if isinstance(value, dict):
        return tuple(
            (key, normalize(value[key])) for key in sorted(value)
        )
    return value


def bit_array_int(bloom) -> Any:
    """A Bloom filter's bit state as big int(s), whichever engine built it."""
    if hasattr(bloom, "_array"):  # scalar flat
        return bloom._array
    if hasattr(bloom, "_arrays"):  # scalar banked
        return tuple(bloom._arrays)
    words = bloom._words
    if words.ndim == 1:  # vector flat
        return int.from_bytes(words.tobytes(), "little")
    return tuple(  # vector banked: one int per bank
        int.from_bytes(words[bank].tobytes(), "little")
        for bank in range(words.shape[0])
    )


def bloom_state(bloom) -> tuple:
    return (bloom.inserted, bloom.popcount, bit_array_int(bloom))


def setassoc_state(array) -> tuple:
    """Counters, per-set LRU-ordered residency, and per-line metadata."""
    lines = array.resident_lines()
    return (
        array.hits,
        array.misses,
        array.evictions,
        tuple(lines),
        tuple(normalize(array.peek(line)) for line in lines),
    )


def histogram_state(histogram) -> tuple:
    # Reading the aggregates flushes any pending samples first.
    return (
        histogram.count,
        histogram._sum,
        histogram.max,
        tuple(histogram._counts),
    )


def stateless(obj) -> None:
    """State function for pure kernels (latency tables)."""
    return None


class DifferentialHarness:
    """Replay op-sequences through two engines, asserting lockstep equality."""

    def __init__(
        self,
        reference: Any,
        candidate: Any,
        state_fn: Callable[[Any], Any] = lambda obj: None,
        normalize_fn: Callable[[Any], Any] = normalize,
    ) -> None:
        self.reference = reference
        self.candidate = candidate
        self.state_fn = state_fn
        self.normalize = normalize_fn
        self.ops_applied = 0

    def _invoke(self, target: Any, name: str, args: Sequence[Any]) -> Any:
        attr = getattr(target, name)
        if callable(attr):
            return attr(*args)
        if args:
            raise TypeError(f"property op {name!r} takes no arguments")
        return attr

    def apply(self, name: str, *args: Any) -> Any:
        """Run one op on both engines; returns the reference output."""
        ref_out = self._invoke(self.reference, name, args)
        cand_out = self._invoke(self.candidate, name, args)
        ref_norm = self.normalize(ref_out)
        cand_norm = self.normalize(cand_out)
        step = self.ops_applied
        if ref_norm != cand_norm:
            raise Divergence(
                f"op {step} {name}{tuple(args)!r}: output diverged\n"
                f"  reference: {ref_norm!r}\n"
                f"  candidate: {cand_norm!r}"
            )
        ref_state = self.state_fn(self.reference)
        cand_state = self.state_fn(self.candidate)
        if ref_state != cand_state:
            raise Divergence(
                f"op {step} {name}{tuple(args)!r}: state diverged\n"
                f"  reference: {ref_state!r}\n"
                f"  candidate: {cand_state!r}"
            )
        self.ops_applied += 1
        return ref_out

    def replay(self, ops: Iterable[Tuple[Any, ...]]) -> int:
        """Apply a recorded op-sequence; returns the number of ops run."""
        for op in ops:
            name, *args = op
            self.apply(name, *args)
        return self.ops_applied


# -- recorded op-sequence generators ----------------------------------------
#
# Deterministic random op streams, seeded so failures replay exactly.  These
# are shared by the differential tests, the Hypothesis suites' explicit
# examples, and the mutation kill-tests (which must diverge on the *same*
# sequences the real engines pass).


def bloom_ops(seed: int, length: int = 400, span: int = 1 << 40):
    import random

    rng = random.Random(seed)
    ops = []
    for _ in range(length):
        roll = rng.random()
        value = rng.randrange(span)
        if roll < 0.45:
            ops.append(("insert", value))
        elif roll < 0.85:
            ops.append(("maybe_contains", value))
        elif roll < 0.90:
            ops.append(("popcount",))
        elif roll < 0.94:
            ops.append(("saturation",))
        elif roll < 0.97:
            ops.append(("observed_false_positive_rate",))
        elif roll < 0.99:
            ops.append(("is_empty",))
        else:
            ops.append(("clear",))
    return ops


def setassoc_ops(seed: int, length: int = 1500, lines: int = 96):
    """Probe/fill/evict/remove streams over a small line pool.

    Fills are guarded (``fill_if_absent``) because the scalar array's
    ``fill`` contract requires non-residency; the guard keeps generated
    sequences legal for both engines.
    """
    import random

    from repro.params import LINE_SIZE

    rng = random.Random(seed)
    ops = []
    for _ in range(length):
        roll = rng.random()
        addr = rng.randrange(lines) * LINE_SIZE
        if roll < 0.40:
            ops.append(("lookup", addr))
        elif roll < 0.50:
            ops.append(("peek", addr))
        elif roll < 0.80:
            ops.append(("fill_if_absent", addr))
        elif roll < 0.90:
            ops.append(("remove", addr))
        elif roll < 0.96:
            ops.append(("resident_lines",))
        elif roll < 0.98:
            ops.append(("resident_count",))
        else:
            ops.append(("clear",))
    return ops


class GuardedArray:
    """Adapter adding the residency guard the op streams rely on."""

    def __init__(self, array: Any) -> None:
        self.array = array

    def fill_if_absent(self, line_addr: int):
        if self.array.peek(line_addr) is not None:
            return ("resident",)
        meta, victims = self.array.fill(line_addr)
        return (meta, tuple(victims))

    def __getattr__(self, name: str) -> Any:
        return getattr(self.array, name)


def histogram_ops(seed: int, length: int = 600):
    import random

    rng = random.Random(seed)
    ops = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.8:
            ops.append(("record", rng.random() * 10 ** rng.randrange(7)))
        elif roll < 0.88:
            ops.append(("count",))
        elif roll < 0.94:
            ops.append(("mean",))
        elif roll < 0.98:
            ops.append(("max",))
        else:
            ops.append(("percentile", 0.95))
    return ops
