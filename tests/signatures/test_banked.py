"""Tests for the banked (partitioned) Bloom-filter signatures."""

from __future__ import annotations

import pytest

from repro.params import SignatureConfig
from repro.signatures.addresssig import SignaturePair
from repro.signatures.bloom import BankedBloomFilter
from repro.signatures.hashing import MultiplicativeHashFamily


def make_banked(bits=256, k=4, seed=2):
    return BankedBloomFilter(
        bits, k, MultiplicativeHashFamily(k, bits // k, seed=seed)
    )


class TestBankedFilter:
    def test_no_false_negatives(self):
        bloom = make_banked()
        values = [0x1000 + i * 64 for i in range(100)]
        bloom.insert_all(values)
        assert all(bloom.maybe_contains(v) for v in values)

    def test_empty_and_clear(self):
        bloom = make_banked()
        assert bloom.is_empty()
        bloom.insert(0x40)
        assert not bloom.is_empty()
        bloom.clear()
        assert bloom.is_empty()
        assert bloom.inserted == 0

    def test_popcount_bounded_per_insert(self):
        bloom = make_banked(bits=256, k=4)
        bloom.insert(0x40)
        assert 1 <= bloom.popcount <= 4

    def test_saturation(self):
        bloom = make_banked(bits=64, k=4)
        for i in range(500):
            bloom.insert(i * 64)
        assert bloom.saturation > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            BankedBloomFilter(2, 4)
        with pytest.raises(ValueError):
            BankedBloomFilter(256, 4, MultiplicativeHashFamily(4, 256))

    def test_banked_fp_rate_at_least_flat(self):
        """The textbook result: partitioning never *reduces* the FP rate."""
        from repro.signatures.bloom import BloomFilter

        inserted = [0x4000_0000 + i * 64 for i in range(300)]
        probes = [0x9000_0000 + i * 64 for i in range(4000)]
        flat = BloomFilter(1024, 4, MultiplicativeHashFamily(4, 1024, seed=3))
        banked = make_banked(bits=1024, k=4, seed=3)
        flat.insert_all(inserted)
        banked.insert_all(inserted)
        fp_flat = sum(flat.maybe_contains(p) for p in probes)
        fp_banked = sum(banked.maybe_contains(p) for p in probes)
        assert fp_banked >= fp_flat * 0.8  # statistically ≥, allow noise


class TestBankedSignaturePair:
    def test_banked_config_builds_banked_filters(self):
        pair = SignaturePair(SignatureConfig(bits=1024, banked=True))
        assert isinstance(pair.read_filter, BankedBloomFilter)
        assert isinstance(pair.write_filter, BankedBloomFilter)

    def test_conflict_semantics_identical(self):
        pair = SignaturePair(SignatureConfig(bits=1024, banked=True))
        pair.add_write(0x40)
        pair.add_read(0x80)
        assert pair.conflicts_with_access(0x40, is_write=False)
        assert pair.conflicts_with_access(0x80, is_write=True)
        assert not pair.truly_conflicts_with_access(0x80, is_write=False)

    def test_banked_bits_validation(self):
        with pytest.raises(Exception):
            SignatureConfig(bits=1022, banked=True)  # not divisible by k
