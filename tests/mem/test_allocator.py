"""Tests for the region allocator."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError
from repro.mem.address import AddressSpace, MemoryKind
from repro.mem.allocator import RegionAllocator
from repro.params import LINE_SIZE, MemoryConfig


@pytest.fixture
def allocator():
    space = AddressSpace(MemoryConfig(dram_bytes=1 << 20, dram_log_bytes=1 << 16))
    return RegionAllocator(space.dram_heap)


class TestAllocation:
    def test_line_alignment(self, allocator):
        for size in (1, 8, 63, 64, 65, 200):
            addr = allocator.alloc(size)
            assert addr % LINE_SIZE == 0

    def test_distinct_objects_never_share_a_line(self, allocator):
        a = allocator.alloc(8)
        b = allocator.alloc(8)
        assert abs(a - b) >= LINE_SIZE

    def test_allocations_within_region(self, allocator):
        addr = allocator.alloc(128)
        assert allocator.region.contains(addr)
        assert allocator.region.contains(addr + 127)

    def test_zero_size_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.alloc(0)

    def test_exhaustion_raises(self):
        space = AddressSpace(
            MemoryConfig(dram_bytes=1 << 20, dram_log_bytes=(1 << 20) - 4096)
        )
        allocator = RegionAllocator(space.dram_heap)  # 4 KB heap
        allocator.alloc(2048)
        with pytest.raises(AllocationError):
            allocator.alloc(4096)


class TestFreeList:
    def test_free_and_reuse(self, allocator):
        addr = allocator.alloc(128)
        allocator.free(addr, 128)
        again = allocator.alloc(128)
        assert again == addr

    def test_free_lists_are_per_size_class(self, allocator):
        small = allocator.alloc(64)
        allocator.free(small, 64)
        big = allocator.alloc(640)
        assert big != small

    def test_free_outside_region_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.free(0, 64)

    def test_allocated_bytes_accounting(self, allocator):
        a = allocator.alloc(64)
        allocator.alloc(64)
        assert allocator.allocated_bytes == 128
        allocator.free(a, 64)
        assert allocator.allocated_bytes == 64

    def test_high_water_tracks_bump_pointer(self, allocator):
        allocator.alloc(64)
        allocator.alloc(64)
        assert allocator.high_water_bytes == 128
        # Reuse from the free list must not raise the high-water mark.
        addr = allocator.alloc(64)
        allocator.free(addr, 64)
        allocator.alloc(64)
        assert allocator.high_water_bytes == 192

    def test_reset(self, allocator):
        first = allocator.alloc(64)
        allocator.reset()
        assert allocator.alloc(64) == first
        assert allocator.allocated_bytes == 64
