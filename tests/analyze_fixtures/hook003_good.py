"""GOOD fixture: every sanctioned guard shape."""


class Machine:
    def __init__(self):
        self.fault_injector = None
        self.pre_compact = None

    def step(self):
        if self.fault_injector is not None:
            self.fault_injector.on_step(1)

    def compact(self):
        if self.pre_compact is not None and self.ready:
            self.pre_compact()

    def aliased(self, controller):
        injector = controller.fault_injector
        if injector is None:
            return
        injector.observe(2)

    def asserted(self):
        assert self.fault_injector is not None
        self.fault_injector.on_step(3)
