"""Lightweight event tracing for debugging and white-box tests.

Tracing is off by default; when enabled the recorder keeps an in-memory list
of :class:`TraceEvent` tuples that tests can assert against (e.g. "an undo
log record was written before the in-place update").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event: a timestamped, categorised record."""

    time_ns: float
    category: str
    thread_id: int
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` objects when enabled."""

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def emit(self, time_ns: float, category: str, thread_id: int, **detail: Any) -> None:
        if not self.enabled:
            return
        if self._capacity is not None and len(self._events) >= self._capacity:
            self._dropped += 1
            return
        self._events.append(TraceEvent(time_ns, category, thread_id, detail))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        return self._dropped

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self._events if e.category == category]

    def clear(self) -> None:
        self._events.clear()
        self._dropped = 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
