"""Multi-writer safety of ``ResultCache.put``: racing processes on the
same fingerprint must land exactly one valid artifact.

This is the property the job service leans on: duplicated execution (a
stolen lease racing its not-quite-dead owner) resolves to concurrent
``put`` calls for the same content — which must never tear the artifact
or leave staging droppings behind.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing

from repro.harness.cache import ResultCache
from repro.harness.config import ExperimentSpec, consolidated
from repro.harness.metrics import RunResult
from repro.params import HTMConfig
from repro.workloads import WorkloadParams

ROUNDS = 5
WRITERS = 4


def _spec(seed: int) -> ExperimentSpec:
    return ExperimentSpec(
        name="race-test",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap", 2,
            WorkloadParams(threads=2, txs_per_thread=2,
                           value_bytes=16 << 10, keys=64, initial_fill=16),
        ),
        scale=1 / 64,
        cores=4,
        seed=seed,
    )


def _result() -> RunResult:
    return RunResult(
        label="1k_opt",
        elapsed_ns=1.0,
        committed_ops=8,
        commits=8,
        begins=11,
        aborts=3,
        aborts_by_reason={"capacity": 3},
        overflows=4,
        sig_checks=100,
        verified=True,
        ops_by_process={0: 4, 1: 4},
    )


def _writer(root, seed, barrier):
    """Module-level so it forks/spawns cleanly from the pool."""
    cache = ResultCache(root)
    spec = _spec(seed)
    result = _result()
    barrier.wait()  # line every writer up on the same instant
    cache.put(spec, result)


class TestMultiWriterPut:
    def test_racing_writers_land_one_valid_artifact(self, tmp_path):
        ctx = multiprocessing.get_context()
        for round_index in range(ROUNDS):
            seed = 9000 + round_index
            barrier = ctx.Barrier(WRITERS)
            procs = [
                ctx.Process(
                    target=_writer, args=(str(tmp_path), seed, barrier)
                )
                for _ in range(WRITERS)
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join(timeout=60)
                assert proc.exitcode == 0

            cache = ResultCache(tmp_path)
            fingerprint = cache.fingerprint(_spec(seed), None)
            path = cache.path_for(fingerprint)
            assert path.is_file()
            # The artifact parses — no torn or interleaved writes.
            json.loads(path.read_text(encoding="utf-8"))
            assert cache.get(_spec(seed)) == _result()

        # No staging droppings anywhere in the cache tree.
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_unique_tmp_names_per_writer(self, tmp_path):
        """Two put() calls in one process stage under distinct tmp names
        (the pid alone is not enough within a single process)."""
        from repro.harness import cache as cache_module

        seen = set()
        original_replace = cache_module.Path.replace
        cache = ResultCache(tmp_path)

        class Spy:
            def __enter__(self):
                def spy(path_self, target):
                    if path_self.suffix == ".tmp":
                        seen.add(path_self.name)
                    return original_replace(path_self, target)

                cache_module.Path.replace = spy
                return self

            def __exit__(self, *exc):
                cache_module.Path.replace = original_replace

        with Spy():
            cache.put(_spec(1), _result())
            cache.put(dataclasses.replace(_spec(1), seed=2), _result())
        assert len(seen) == 2
