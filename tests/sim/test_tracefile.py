"""Tests for trace capture, serialisation, and replay."""

from __future__ import annotations

import io

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.errors import ReproError
from repro.mem.address import MemoryKind
from repro.sim.tracefile import (
    MemoryTrace,
    TraceCapture,
    TracedOp,
    TracedTx,
)
from repro.workloads import WORKLOADS, WorkloadParams
from repro.workloads.trace_replay import TraceReplayWorkload


def build_trace():
    trace = MemoryTrace()
    t0 = trace.thread(0)
    t0.txs.append(
        TracedTx([
            TracedOp(False, MemoryKind.DRAM, 0),
            TracedOp(True, MemoryKind.NVM, 128),
        ])
    )
    t1 = trace.thread(1)
    t1.txs.append(TracedTx([TracedOp(True, MemoryKind.DRAM, 64)]))
    return trace


class TestFormatRoundTrip:
    def test_dump_and_load(self):
        trace = build_trace()
        text = trace.dumps()
        restored = MemoryTrace.loads(text)
        assert restored.total_txs() == 2
        assert restored.total_ops() == 3
        op = restored.threads[0].txs[0].ops[1]
        assert op.is_write and op.kind is MemoryKind.NVM and op.offset == 128

    def test_arena_sizing(self):
        trace = build_trace()
        assert trace.arena_bytes(MemoryKind.NVM) == 136
        assert trace.arena_bytes(MemoryKind.DRAM) == 72

    def test_bad_header_rejected(self):
        with pytest.raises(ReproError):
            MemoryTrace.load(io.StringIO("not a trace\n"))

    def test_op_outside_tx_rejected(self):
        text = "# uhtm-trace v1\nTHREAD 0\nR d 0\n"
        with pytest.raises(ReproError):
            MemoryTrace.loads(text)

    def test_bad_record_rejected(self):
        text = "# uhtm-trace v1\nTHREAD 0\nTX\nXYZZY\n"
        with pytest.raises(ReproError):
            MemoryTrace.loads(text)

    def test_comments_and_blank_lines_skipped(self):
        text = (
            "# uhtm-trace v1\n\n# a comment\nTHREAD 0\nTX\nR d 0\nEND\n"
        )
        assert MemoryTrace.loads(text).total_ops() == 1


class TestCaptureSemantics:
    def test_only_commits_recorded(self):
        capture = TraceCapture(dram_base=1000, nvm_base=100_000)
        capture.begin(1, thread_id=0)
        capture.op(1, True, 1064)
        capture.abort(1)
        capture.begin(2, thread_id=0)
        capture.op(2, False, 100_128)
        capture.commit(2)
        trace = capture.trace
        assert trace.total_txs() == 1
        op = trace.threads[0].txs[0].ops[0]
        assert op.kind is MemoryKind.NVM and op.offset == 128

    def test_address_normalisation(self):
        capture = TraceCapture(dram_base=1000, nvm_base=100_000)
        capture.begin(1, 3)
        capture.op(1, True, 1000)
        capture.commit(1)
        op = capture.trace.thread(3).txs[0].ops[0]
        assert op.kind is MemoryKind.DRAM and op.offset == 0


class TestEndToEndCaptureReplay:
    def capture_run(self):
        system = System(
            MachineConfig.scaled(1 / 64, cores=4),
            HTMConfig(design="uhtm"),
            seed=11,
            capture_trace=True,
        )
        proc = system.process("source")
        params = WorkloadParams(
            threads=4, txs_per_thread=3, value_bytes=16 << 10,
            keys=64, initial_fill=16,
        )
        workload = WORKLOADS["hashmap"](system, proc, params)
        workload.spawn()
        system.run()
        return system

    def test_capture_produces_trace(self):
        system = self.capture_run()
        trace = system.captured_trace()
        assert trace is not None
        assert trace.total_txs() == system.stats.counter("tx.commits")
        assert trace.total_ops() > 0

    def test_capture_disabled_returns_none(self):
        system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
        assert system.captured_trace() is None

    @pytest.mark.parametrize("design", ["uhtm", "llc_bounded", "ideal"])
    def test_replay_under_any_design(self, design):
        trace = self.capture_run().captured_trace()
        replay_system = System(
            MachineConfig.scaled(1 / 64, cores=4), HTMConfig(design=design)
        )
        proc = replay_system.process("replay")
        workload = TraceReplayWorkload(
            replay_system, proc,
            WorkloadParams(threads=len(trace.threads)), trace,
        )
        workload.spawn()
        replay_system.run()
        assert workload.verify()
        assert (
            replay_system.stats.counter("ops.committed") == trace.total_txs()
        )

    def test_replay_after_serialisation_round_trip(self):
        trace = self.capture_run().captured_trace()
        restored = MemoryTrace.loads(trace.dumps())
        replay_system = System(
            MachineConfig.scaled(1 / 64, cores=4), HTMConfig()
        )
        proc = replay_system.process("replay")
        workload = TraceReplayWorkload(
            replay_system, proc, WorkloadParams(), restored
        )
        workload.spawn()
        replay_system.run()
        assert workload.verify()
