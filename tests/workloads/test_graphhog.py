"""Tests for the graph-walk co-runner."""

from __future__ import annotations

from repro import HTMConfig, MachineConfig, System
from repro.workloads import GraphHogWorkload, WorkloadParams


def make_system():
    return System(MachineConfig.scaled(1 / 256, cores=2), HTMConfig())


class TestGraphHog:
    def test_setup_builds_valid_graph(self):
        system = make_system()
        proc = system.process("g")
        hog = GraphHogWorkload(
            system, proc, WorkloadParams(threads=1, value_bytes=64,
                                         initial_fill=0),
            llc_multiple=1.0, max_hops=10,
        )
        hog.setup()
        # Every edge slot points to a valid node index.
        for node in range(0, hog.node_count, max(1, hog.node_count // 32)):
            for slot in range(4):
                target = hog.raw.read_word(hog.base + node * 64 + slot * 8)
                assert 0 <= target < hog.node_count

    def test_walk_terminates_at_max_hops(self):
        system = make_system()
        proc = system.process("g")
        hog = GraphHogWorkload(
            system, proc, WorkloadParams(threads=1, value_bytes=64,
                                         initial_fill=0),
            llc_multiple=1.0, max_hops=200,
        )
        hog.spawn()
        system.run()
        assert system.engine.all_done()
        assert hog.hops_completed >= 190

    def test_stop_when_honoured(self):
        system = make_system()
        proc = system.process("g")
        stop = {"flag": False}
        hog = GraphHogWorkload(
            system, proc, WorkloadParams(threads=1, value_bytes=64,
                                         initial_fill=0),
            llc_multiple=1.0, stop_when=lambda: stop["flag"],
            max_hops=10_000_000,
        )
        hog.spawn()
        system.run(max_steps=20)
        stop["flag"] = True
        system.run()
        assert system.engine.all_done()

    def test_random_access_spreads_over_llc(self):
        system = make_system()
        proc = system.process("g")
        hog = GraphHogWorkload(
            system, proc, WorkloadParams(threads=1, value_bytes=64,
                                         initial_fill=0),
            llc_multiple=2.0, max_hops=3000,
        )
        hog.spawn()
        system.run()
        occupancy = system.hierarchy.llc.resident_count()
        assert occupancy > system.machine.llc.num_lines * 0.5

    def test_usable_as_experiment_corunner(self):
        from repro.harness.config import ExperimentSpec, consolidated
        from repro.harness.runner import run_experiment

        spec = ExperimentSpec(
            name="g",
            htm=HTMConfig(),
            benchmarks=consolidated(
                "hashmap", 2,
                WorkloadParams(threads=2, txs_per_thread=2,
                               value_bytes=16 << 10, keys=64,
                               initial_fill=16),
            ),
            scale=1 / 16,
            cores=4,
            membound_instances=1,
            corunner="graphhog",
        )
        result = run_experiment(spec)
        assert result.committed_ops > 0
