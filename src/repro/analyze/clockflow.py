"""CLK008 — the wall-clock funnel, enforced through the call graph.

DET001 bans direct ``time.*``/``datetime.now`` calls per file; that leaves
a hole the funnel discipline actually cares about: a sim-critical function
calling a *wrapper* that reads the clock two modules away.  No per-file
allowlist sees that — call-graph reachability does.

The declared funnels (:data:`repro.analyze.layers.CLOCK_FUNNEL_FILES` —
``harness/timer.py``, ``perf/phases.py``, ``serve/clock.py``) absorb clock
taint: reaching the clock *through* them is the sanctioned path, so the
reverse reachability walk never propagates taint out of a funnel file.
Everything else that contains a direct clock read seeds the tainted set,
and any sim-critical function inside it is flagged with the offending call
chain.

Only syntactically-certain call edges (``local``/``import``/``self``)
participate; the ``unique`` fallback kind is excluded so a coincidental
method name cannot manufacture a finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Checker, Finding, Project, SourceFile, register
from .dataflow import CallGraph, FunctionKey, ProjectIndex, engine_for
from .determinism import NONDETERMINISTIC_CALLS
from .layers import CLOCK_FUNNEL_FILES


def _is_funnel(posix_path: str) -> bool:
    return any(posix_path.endswith(suffix) for suffix in CLOCK_FUNNEL_FILES)


def _direct_clock_calls(tree: ast.AST) -> List[Tuple[ast.Call, str]]:
    """``(call, description)`` for every direct clock/entropy read."""
    imported: Set[str] = set()
    out: List[Tuple[ast.Call, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            banned = NONDETERMINISTIC_CALLS.get(node.module or "")
            if banned:
                for alias in node.names:
                    if alias.name in banned:
                        imported.add(alias.asname or alias.name)
        if not isinstance(node, ast.Call):
            continue
        head = node.func
        if isinstance(head, ast.Attribute) and isinstance(head.value, ast.Name):
            banned = NONDETERMINISTIC_CALLS.get(head.value.id)
            if banned is not None and head.attr in banned:
                out.append((node, f"{head.value.id}.{head.attr}()"))
        elif isinstance(head, ast.Name) and head.id in imported:
            out.append((node, f"{head.id}()"))
    return out


@register
class ClockFunnelChecker(Checker):
    rule = "CLK008"
    description = (
        "wall-clock reads are reachable from sim-critical code only "
        "through the declared funnels (harness/timer, perf/phases, "
        "serve/clock), checked by call-graph reachability"
    )

    def _tainted(
        self, project: Project, index: ProjectIndex, graph: CallGraph
    ) -> Tuple[Set[FunctionKey], Dict[FunctionKey, str]]:
        """``(tainted functions, seed -> clock-call description)``.

        Cached on the project instance (one reachability pass per run).
        """
        cached = getattr(project, "_clk008_tainted", None)
        if cached is not None:
            return cached
        seeds: Dict[FunctionKey, str] = {}
        for module in index.modules.values():
            posix = module.source.path.as_posix()
            if _is_funnel(posix):
                continue  # funnels absorb taint: the sanctioned path
            clock_calls = _direct_clock_calls(module.source.tree)
            if not clock_calls:
                continue
            for info in module.functions.values():
                own = set()
                for child in ast.walk(info.node):
                    own.add(id(child))
                for call, description in clock_calls:
                    if id(call) in own:
                        seeds.setdefault(info.key, description)
        # Reverse reachability, never expanding out of a funnel file.
        tainted: Set[FunctionKey] = set(seeds)
        frontier = list(seeds)
        while frontier:
            current = frontier.pop()
            for edge in graph.reverse.get(current, []):
                if edge.kind == "unique" or edge.caller in tainted:
                    continue
                caller_info = index.function(edge.caller)
                if caller_info is None or _is_funnel(
                    caller_info.source.path.as_posix()
                ):
                    continue
                tainted.add(edge.caller)
                frontier.append(edge.caller)
        project._clk008_tainted = (tainted, seeds)  # type: ignore[attr-defined]
        return tainted, seeds

    def check(self, source: SourceFile, project: Project) -> Iterable[Finding]:
        index, graph = engine_for(project)
        tainted, seeds = self._tainted(project, index, graph)
        posix = source.path.as_posix()
        if _is_funnel(posix):
            return
        module = index.module_for(source)
        if source.sim_critical:
            # Direct reads in sim-critical code are funnel violations
            # regardless of the call graph (DET001 flags them too; CLK008
            # names the funnel discipline they break).
            for call, description in _direct_clock_calls(source.tree):
                yield self.finding(
                    source,
                    call,
                    f"{description} is a direct wall-clock read in "
                    "sim-critical code; route it through a declared funnel "
                    "(repro.harness.timer / repro.serve.clock)",
                )
            for info in module.functions.values():
                if info.key in seeds:
                    continue  # already flagged at the call site above
                if info.key not in tainted:
                    continue
                chain = graph.chain_to(
                    info.key, set(seeds), kinds=("local", "import", "self")
                )
                via = " -> ".join(str(key) for key in chain)
                seed_description = seeds.get(
                    chain[-1] if chain else info.key, "a wall-clock read"
                )
                yield self.finding(
                    source,
                    info.node,
                    f"'{info.key.qualname}' reaches {seed_description} "
                    f"outside the declared clock funnels (via {via}); "
                    "only harness/timer, perf/phases and serve/clock may "
                    "read the wall clock",
                )
