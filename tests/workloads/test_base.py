"""Tests for the workload base machinery: params, key streams, payloads."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.errors import ConfigError
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE
from repro.runtime.txapi import RawContext
from repro.workloads.base import (
    PayloadPool,
    Workload,
    WorkloadParams,
    read_payload,
    write_payload,
)


class TestWorkloadParams:
    def test_defaults_valid(self):
        WorkloadParams()

    def test_validation(self):
        with pytest.raises(ConfigError):
            WorkloadParams(threads=0)
        with pytest.raises(ConfigError):
            WorkloadParams(txs_per_thread=0)
        with pytest.raises(ConfigError):
            WorkloadParams(value_bytes=4)
        with pytest.raises(ConfigError):
            WorkloadParams(ops_per_tx=0)
        with pytest.raises(ConfigError):
            WorkloadParams(update_ratio=1.5)
        with pytest.raises(ConfigError):
            WorkloadParams(keys=10, initial_fill=20)

    def test_with_override(self):
        params = WorkloadParams().with_(threads=8)
        assert params.threads == 8
        assert params.keys == WorkloadParams().keys

    def test_scaled_value_bytes(self):
        params = WorkloadParams(value_bytes=100 << 10)
        assert params.scaled_value_bytes(1.0) == 100 << 10
        scaled = params.scaled_value_bytes(1 / 16)
        assert scaled % LINE_SIZE == 0
        assert scaled == 6400 - 6400 % 64

    def test_scaled_value_floor_is_one_line(self):
        params = WorkloadParams(value_bytes=64)
        assert params.scaled_value_bytes(1 / 4096) == LINE_SIZE


class DummyWorkload(Workload):
    name = "dummy"

    def thread_bodies(self):
        return []


def make_workload(params=None, cores=4):
    system = System(MachineConfig.scaled(1 / 64, cores=cores), HTMConfig())
    proc = system.process("w")
    return DummyWorkload(system, proc, params or WorkloadParams())


class TestKeyStream:
    def test_update_keys_are_sharded_per_thread(self):
        params = WorkloadParams(
            threads=4, keys=1024, initial_fill=512, update_ratio=1.0
        )
        workload = make_workload(params)
        seen = {}
        for thread in range(4):
            stream = workload.key_stream(thread)
            seen[thread] = {next(stream) for _ in range(200)}
        for a in range(4):
            for b in range(a + 1, 4):
                assert not (seen[a] & seen[b]), f"shards {a},{b} overlap"

    def test_fresh_keys_are_sharded_per_thread(self):
        params = WorkloadParams(
            threads=4, keys=1024, initial_fill=256, update_ratio=0.0
        )
        workload = make_workload(params)
        seen = {}
        for thread in range(4):
            stream = workload.key_stream(thread)
            seen[thread] = {next(stream) for _ in range(50)}
        for a in range(4):
            for b in range(a + 1, 4):
                assert not (seen[a] & seen[b])

    def test_keys_stay_in_range(self):
        params = WorkloadParams(threads=3, keys=100, initial_fill=40)
        workload = make_workload(params)
        stream = workload.key_stream(2)
        for _ in range(500):
            key = next(stream)
            assert 0 <= key < 100

    def test_deterministic_per_seed(self):
        params = WorkloadParams(threads=2, keys=64, initial_fill=32)
        first = make_workload(params)
        second = make_workload(params)
        s1 = first.key_stream(0)
        s2 = second.key_stream(0)
        assert [next(s1) for _ in range(50)] == [next(s2) for _ in range(50)]


class TestPayloadHelpers:
    def test_payload_pool_reuses_blocks_per_key(self):
        system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
        pool = PayloadPool(system, keys=8, nbytes=128, kind=MemoryKind.DRAM)
        assert pool.block_for(3) == pool.block_for(3)
        assert pool.block_for(3) == pool.block_for(11)  # modulo wrap
        assert pool.block_for(3) != pool.block_for(4)

    def test_write_then_read_payload(self):
        system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
        raw = RawContext(system.controller)
        addr = system.heap.alloc(5 * LINE_SIZE, MemoryKind.NVM)
        list(write_payload(raw, addr, 5 * LINE_SIZE, tag=7))
        gen = read_payload(raw, addr, 5 * LINE_SIZE)
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            assert stop.value == 7

    def test_write_payload_yields_between_chunks(self):
        system = System(MachineConfig.scaled(1 / 64, cores=2), HTMConfig())
        raw = RawContext(system.controller)
        addr = system.heap.alloc(40 * LINE_SIZE, MemoryKind.DRAM)
        yields = sum(1 for _ in write_payload(raw, addr, 40 * LINE_SIZE, 1))
        assert yields == 3  # ceil(40 / 16 lines per chunk)
