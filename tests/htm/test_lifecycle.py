"""White-box tests of the HTM transaction lifecycle (UHTM design).

These drive :class:`HTMSystem` directly — begin / tx_read / tx_write /
commit / abort — without the scheduler, asserting on version management,
visibility, rollback, and the staged conflict checks.
"""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, SignatureConfig, System, TransactionAborted
from repro.errors import AbortReason, TransactionStateError
from repro.htm.tss import TxStatus
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE
from repro.sim.engine import SimThread


def make_system(design="uhtm", scale=1 / 64, cores=4, **kwargs):
    machine = MachineConfig.scaled(scale, cores=cores)
    return System(machine, HTMConfig(design=design, **kwargs))


def make_thread(thread_id=0):
    return SimThread(thread_id, f"raw{thread_id}", lambda t: iter(()))


def begin(system, thread, core=0, pid=1, domain=1):
    return system.htm.begin(thread, core, pid, domain)


class TestReadWriteVisibility:
    def test_read_own_write(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.tx_write(tx, addr, 42)
        assert system.htm.tx_read(tx, addr) == 42

    def test_uncommitted_write_invisible_to_memory(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.tx_write(tx, addr, 42)
        assert system.controller.dram.load(addr) == 0

    def test_commit_publishes_dram(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.tx_write(tx, addr, 42)
        system.htm.commit(tx)
        assert system.controller.dram.load(addr) == 42

    def test_commit_publishes_nvm_via_dram_cache(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.tx_write(tx, addr, 7)
        system.htm.commit(tx)
        assert system.controller.load_word(addr) == 7
        assert addr in [
            line for line, _, _ in system.controller.dram_cache.resident_lines()
        ] or system.controller.nvm.load(addr) == 7

    def test_read_sees_committed_state_of_earlier_tx(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        thread = make_thread()
        tx1 = begin(system, thread)
        system.htm.tx_write(tx1, addr, 5)
        system.htm.commit(tx1)
        tx2 = begin(system, thread)
        assert system.htm.tx_read(tx2, addr) == 5

    def test_accesses_charge_thread_time(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        thread = make_thread()
        tx = begin(system, thread)
        before = thread.clock_ns
        system.htm.tx_read(tx, addr)
        assert thread.clock_ns > before

    def test_nvm_write_charges_log_append(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.tx_read(tx, addr)
        after_read = thread.clock_ns
        system.htm.tx_write(tx, addr, 1)
        charged = thread.clock_ns - after_read
        assert charged >= system.machine.latency.nvm_write_ns
        assert system.stats.counter("nvm.log_appends") == 1
        # Second write to the same line: no second log charge.
        system.htm.tx_write(tx, addr + 8, 2)
        assert system.stats.counter("nvm.log_appends") == 1


class TestAbortRollback:
    def test_explicit_abort_discards_writes(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        system.controller.dram.store(addr, 9)
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.tx_write(tx, addr, 42)
        with pytest.raises(TransactionAborted):
            system.htm.explicit_abort(tx)
        assert system.controller.dram.load(addr) == 9

    def test_aborted_tx_operations_raise(self):
        system = make_system()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        thread = make_thread()
        tx = begin(system, thread)
        system.htm._abort(tx, AbortReason.EXPLICIT)
        with pytest.raises(TransactionAborted):
            system.htm.tx_read(tx, addr)

    def test_commit_of_doomed_tx_raises(self):
        system = make_system()
        thread = make_thread()
        tx = begin(system, thread)
        system.htm._abort(tx, AbortReason.EXPLICIT)
        with pytest.raises(TransactionAborted):
            system.htm.commit(tx)

    def test_double_commit_rejected(self):
        system = make_system()
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.commit(tx)
        with pytest.raises(TransactionStateError):
            system.htm.commit(tx)

    def test_abort_rolls_back_overflowed_dram_lines(self):
        """In-place updated (undo-logged) lines are restored on abort."""
        system = make_system(scale=1 / 256)  # LLC = 64 KB
        thread = make_thread()
        nlines = 2048  # 128 KB: far beyond the LLC
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        for i in range(nlines):
            system.controller.dram.store(base + i * LINE_SIZE, 100 + i)
        tx = begin(system, thread)
        for i in range(nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        assert tx.dram_overflowed_lines  # some lines spilled in place
        spilled = sorted(tx.dram_overflowed_lines)
        assert any(
            system.controller.dram.load(line) == 1 for line in spilled
        )
        system.htm._abort(tx, AbortReason.EXPLICIT)
        for i in range(nlines):
            assert system.controller.dram.load(base + i * LINE_SIZE) == 100 + i

    def test_abort_invalidates_buffered_nvm_lines(self):
        system = make_system(scale=1 / 256)
        thread = make_thread()
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.NVM)
        tx = begin(system, thread)
        for i in range(nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        assert tx.nvm_overflowed_lines
        system.htm._abort(tx, AbortReason.EXPLICIT)
        for i in range(nlines):
            assert system.controller.load_word(base + i * LINE_SIZE) == 0

    def test_abort_charges_victim_thread(self):
        system = make_system(scale=1 / 256)
        thread = make_thread()
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx = begin(system, thread)
        for i in range(nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        before = thread.clock_ns
        system.htm._abort(tx, AbortReason.EXPLICIT)
        assert thread.clock_ns > before  # undo rollback is on victim's clock


class TestOverflowTracking:
    def test_overflow_sets_tss_bit_and_signature(self):
        system = make_system(scale=1 / 256)
        thread = make_thread()
        nlines = 2048
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        tx = begin(system, thread)
        for i in range(nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        assert system.htm.tss.is_overflowed(tx.tx_id)
        assert tx.signature is not None
        assert not tx.signature.is_empty()
        # Every spilled line is findable in the write signature (no false
        # negatives — the correctness property).
        for line in tx.dram_overflowed_lines:
            assert tx.signature.write_may_contain(line)

    def test_l1_eviction_appends_overflow_list(self):
        system = make_system(scale=1 / 64)  # L1 = 8 lines
        thread = make_thread()
        nlines = 64
        base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.NVM)
        tx = begin(system, thread)
        for i in range(nlines):
            system.htm.tx_write(tx, base + i * LINE_SIZE, 1)
        assert len(tx.overflow_list) > 0

    def test_no_overflow_within_capacity(self):
        system = make_system()
        thread = make_thread()
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        tx = begin(system, thread)
        system.htm.tx_write(tx, addr, 1)
        assert not system.htm.tss.is_overflowed(tx.tx_id)
        system.htm.commit(tx)


class TestTssLifecycle:
    def test_commit_reclaims_tss(self):
        system = make_system()
        thread = make_thread()
        tx = begin(system, thread)
        system.htm.commit(tx)
        assert len(system.htm.tss) == 0

    def test_abort_keeps_entry_until_acknowledged(self):
        system = make_system()
        thread = make_thread()
        tx = begin(system, thread)
        system.htm._abort(tx, AbortReason.EXPLICIT)
        assert system.htm.tss.entry(tx.tx_id).status is TxStatus.ABORTED
        system.htm.acknowledge_abort(tx)
        assert len(system.htm.tss) == 0

    def test_begin_registers_signature_in_domain(self):
        system = make_system()
        thread = make_thread()
        tx = begin(system, thread, domain=5)
        assert tx.tx_id in system.htm.domains.active_tx_ids()
        system.htm.commit(tx)
        assert tx.tx_id not in system.htm.domains.active_tx_ids()
