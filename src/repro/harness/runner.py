"""Builds a system from an :class:`ExperimentSpec`, runs it, collects metrics."""

from __future__ import annotations

from typing import List, Optional

from ..errors import SimulationError
from ..runtime.system import System
from ..sim.engine import ThreadState
from ..workloads import MemBoundWorkload, WORKLOADS, WorkloadParams
from .config import ExperimentSpec
from .metrics import RunResult, collect_metrics


def build_system(spec: ExperimentSpec) -> System:
    return System(spec.machine(), spec.htm, seed=spec.seed)


def run_experiment(spec: ExperimentSpec, label: Optional[str] = None) -> RunResult:
    """Run one experiment to completion and return its metrics.

    Benchmarks get one simulated process each (their own conflict domain and
    fallback lock); co-runners get processes of their own and run until
    every benchmark thread finishes.
    """
    system = build_system(spec)
    workloads = []
    benchmark_threads = []
    for index, bench in enumerate(spec.benchmarks):
        process = system.process(f"{bench.workload}#{index}")
        workload_cls = WORKLOADS[bench.workload]
        workload = workload_cls(
            system, process, bench.params, **bench.kwargs_dict()
        )
        workload.spawn()
        workloads.append(workload)
        benchmark_threads.extend(process.threads)

    def benchmarks_done() -> bool:
        return all(t.state is ThreadState.DONE for t in benchmark_threads)

    hog_cls = WORKLOADS[spec.corunner]
    for index in range(spec.membound_instances):
        process = system.process(f"{spec.corunner}#{index}")
        hog = hog_cls(
            system,
            process,
            WorkloadParams(threads=1, value_bytes=64, initial_fill=0),
            llc_multiple=spec.membound_llc_multiple,
            stop_when=benchmarks_done,
        )
        hog.spawn()

    system.run(max_steps=spec.max_steps or None)
    if not benchmarks_done():
        raise SimulationError(
            f"experiment {spec.name!r} hit its step cap before finishing"
        )
    verified = all(w.verify() for w in workloads)
    return collect_metrics(system, label or spec.htm.label, verified)


def run_series(
    specs: List[ExperimentSpec], labels: Optional[List[str]] = None
) -> List[RunResult]:
    if labels is None:
        labels = [spec.htm.label for spec in specs]
    return [run_experiment(spec, label) for spec, label in zip(specs, labels)]
