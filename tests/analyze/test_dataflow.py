"""The cross-file dataflow engine: symbol tables, call graph, reachability."""

from __future__ import annotations

import ast
from pathlib import Path

import repro
from repro.analyze import engine_for
from repro.analyze.core import Project
from repro.analyze.dataflow import (
    iter_own_nodes,
    resolve_value,
    single_assignments,
)

REPRO_ROOT = Path(repro.__file__).parent


def make_tree(tmp_path: Path) -> Path:
    """A miniature repro-shaped package exercising every import form."""
    root = tmp_path / "repro"
    (root / "alpha").mkdir(parents=True)
    (root / "beta").mkdir()
    (root / "alpha" / "util.py").write_text(
        "def helper():\n"
        "    return 1\n"
        "\n"
        "\n"
        "def wrapper():\n"
        "    return helper()\n"
        "\n"
        "\n"
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.size = helper()\n"
        "\n"
        "    def grow(self):\n"
        "        return self.shrink()\n"
        "\n"
        "    def shrink(self):\n"
        "        return self.size\n",
        encoding="utf-8",
    )
    (root / "alpha" / "user.py").write_text(
        "from .util import helper\n"
        "from . import util\n"
        "\n"
        "\n"
        "def via_symbol():\n"
        "    return helper()\n"
        "\n"
        "\n"
        "def via_module():\n"
        "    return util.helper()\n",
        encoding="utf-8",
    )
    (root / "beta" / "deep.py").write_text(
        "from ..alpha.util import helper as h\n"
        "from ..alpha import util as aliased_util\n"
        "\n"
        "\n"
        "def via_renamed_symbol():\n"
        "    return h()\n"
        "\n"
        "\n"
        "def via_aliased_module():\n"
        "    return aliased_util.wrapper()\n",
        encoding="utf-8",
    )
    return root


def edges_from(graph, index, path: Path, qualname: str):
    module = index.modules[str(path.resolve())]
    info = module.functions[qualname]
    return graph.edges.get(info.key, [])


class TestSymbolTable:
    def test_relative_imports_resolve_to_files(self, tmp_path):
        root = make_tree(tmp_path)
        project, errors = Project.load([root])
        assert errors == []
        index, _ = engine_for(project)
        user = index.modules[str((root / "alpha" / "user.py").resolve())]
        util_path = str((root / "alpha" / "util.py").resolve())
        assert user.imports["helper"].module_path == util_path
        assert user.imports["helper"].symbol == "helper"
        # ``from . import util`` binds the module itself.
        assert user.imports["util"].module_path == util_path
        assert user.imports["util"].symbol is None

    def test_two_dot_import_climbs_a_package(self, tmp_path):
        root = make_tree(tmp_path)
        project, _ = Project.load([root])
        index, _ = engine_for(project)
        deep = index.modules[str((root / "beta" / "deep.py").resolve())]
        util_path = str((root / "alpha" / "util.py").resolve())
        assert deep.imports["h"].module_path == util_path
        assert deep.imports["h"].symbol == "helper"
        assert deep.imports["aliased_util"].module_path == util_path
        assert deep.imports["aliased_util"].symbol is None

    def test_functions_indexed_by_qualname(self, tmp_path):
        root = make_tree(tmp_path)
        project, _ = Project.load([root])
        index, _ = engine_for(project)
        util = index.modules[str((root / "alpha" / "util.py").resolve())]
        assert "helper" in util.functions
        assert "Widget.__init__" in util.functions
        assert util.functions["Widget.grow"].class_name == "Widget"


class TestCallGraph:
    def test_local_import_and_self_edge_kinds(self, tmp_path):
        root = make_tree(tmp_path)
        project, _ = Project.load([root])
        index, graph = engine_for(project)
        util = root / "alpha" / "util.py"

        local = edges_from(graph, index, util, "wrapper")
        assert [e.kind for e in local] == ["local"]
        assert local[0].callee.qualname == "helper"

        self_edges = edges_from(graph, index, util, "Widget.grow")
        assert [e.kind for e in self_edges] == ["self"]
        assert self_edges[0].callee.qualname == "Widget.shrink"

        symbol = edges_from(
            graph, index, root / "alpha" / "user.py", "via_symbol"
        )
        assert [(e.kind, e.callee.qualname) for e in symbol] == [
            ("import", "helper")
        ]

    def test_aliased_imports_still_give_edges(self, tmp_path):
        root = make_tree(tmp_path)
        project, _ = Project.load([root])
        index, graph = engine_for(project)
        deep = root / "beta" / "deep.py"
        renamed = edges_from(graph, index, deep, "via_renamed_symbol")
        assert [(e.kind, e.callee.qualname) for e in renamed] == [
            ("import", "helper")
        ]
        module_alias = edges_from(graph, index, deep, "via_aliased_module")
        assert [(e.kind, e.callee.qualname) for e in module_alias] == [
            ("import", "wrapper")
        ]

    def test_reverse_reachability_climbs_the_chain(self, tmp_path):
        root = make_tree(tmp_path)
        project, _ = Project.load([root])
        index, graph = engine_for(project)
        util = index.modules[str((root / "alpha" / "util.py").resolve())]
        helper_key = util.functions["helper"].key
        reached = graph.reaching([helper_key])
        names = {key.qualname for key in reached}
        # Everything that calls helper() directly or transitively.
        assert {
            "helper",
            "wrapper",
            "via_symbol",
            "via_module",
            "via_renamed_symbol",
            "via_aliased_module",  # via wrapper -> helper
            "Widget.__init__",
        } <= names

    def test_chain_to_returns_the_actual_path(self, tmp_path):
        root = make_tree(tmp_path)
        project, _ = Project.load([root])
        index, graph = engine_for(project)
        util = index.modules[str((root / "alpha" / "util.py").resolve())]
        deep = index.modules[str((root / "beta" / "deep.py").resolve())]
        start = deep.functions["via_aliased_module"].key
        target = util.functions["helper"].key
        chain = graph.chain_to(start, {target})
        assert [key.qualname for key in chain] == [
            "via_aliased_module",
            "wrapper",
            "helper",
        ]


class TestIntraprocedural:
    def test_single_assignments_drop_rebound_names(self):
        tree = ast.parse(
            "def f(path):\n"
            "    a = path.with_name('x')\n"
            "    b = 1\n"
            "    b = 2\n"
            "    with open(path) as handle:\n"
            "        data = handle.read()\n"
        )
        scope = tree.body[0]
        env = single_assignments(scope)
        assert set(env) == {"a", "handle", "data"}
        assert isinstance(env["handle"], ast.Call)

    def test_resolve_value_chases_names(self):
        tree = ast.parse(
            "def f(store):\n"
            "    first = store.points_path('c')\n"
            "    second = first\n"
            "    third = second\n"
        )
        scope = tree.body[0]
        env = single_assignments(scope)
        value = resolve_value(ast.Name(id="third", ctx=ast.Load()), env)
        assert isinstance(value, ast.Call)
        assert value.func.attr == "points_path"

    def test_iter_own_nodes_skips_nested_function_bodies(self):
        tree = ast.parse(
            "def outer():\n"
            "    a = 1\n"
            "    def inner():\n"
            "        b = 2\n"
            "    return a\n"
        )
        scope = tree.body[0]
        names = {
            node.targets[0].id
            for node in iter_own_nodes(scope)
            if isinstance(node, ast.Assign)
        }
        assert names == {"a"}


class TestRealTree:
    def test_queue_calls_write_json_atomic_through_the_import(self):
        project, errors = Project.load([REPRO_ROOT / "serve"])
        assert errors == []
        index, graph = engine_for(project)
        queue_path = str((REPRO_ROOT / "serve" / "queue.py").resolve())
        queue = index.modules[queue_path]
        try_claim = queue.functions["JobQueue.try_claim"]
        callees = {
            (e.kind, e.callee.qualname)
            for e in graph.edges.get(try_claim.key, [])
        }
        assert ("import", "write_json_atomic") in callees

    def test_atom005_propagates_lease_path_into_the_helper(self):
        from repro.analyze.core import registered_checkers

        project, _ = Project.load([REPRO_ROOT / "serve"])
        checker = registered_checkers()["ATOM005"]
        params = checker._published_params(project)
        by_name = {
            f"{Path(key.path).name}:{key.qualname}": value
            for key, value in params.items()
        }
        assert by_name["jobstore.py:write_json_atomic"] == {
            "path": "lease_path"
        }

    def test_no_sim_critical_function_reaches_the_clock(self):
        """The CLK008 invariant, asserted directly against the engine."""
        from repro.analyze.core import SIM_CRITICAL_PACKAGES, registered_checkers

        project, _ = Project.load([REPRO_ROOT])
        index, graph = engine_for(project)
        checker = registered_checkers()["CLK008"]
        tainted, _seeds = checker._tainted(project, index, graph)
        offending = [
            key
            for key in tainted
            if index.function(key) is not None
            and index.function(key).source.package in SIM_CRITICAL_PACKAGES
        ]
        assert offending == []
