"""Command-line interface: regenerate any figure or table of the paper.

Usage::

    python -m repro list
    python -m repro fig6
    python -m repro fig9 --full
    python -m repro all --seed 7 --jobs 4 --cache-dir .repro-cache
    python -m repro fig2 --serve spool/     # execute via the job service
    python -m repro bench fig6 --jobs 4
    python -m repro serve submit fig2 --smoke
    python -m repro faults --workload hashmap --crashes 50 --seed 1
    python -m repro trace fig7 --report
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
from typing import Optional

from .harness.cache import ResultCache
from .kernels import ENGINE_CHOICES, ENGINE_ENV_VAR, resolve_engine
from .harness.export import to_json, to_markdown
from .harness.figures import ALL_FIGURES
from .harness.config import DEFAULT_SCALE
from .harness.timer import Stopwatch

#: Figures that accept (quick, scale, seed); tables take no arguments.
_STATIC = {"table1", "table2", "table4"}

#: Every tool that is not a figure name: ``subcommand -> (module, help)``.
#: Each module exposes ``main(argv) -> int``.  ``python -m repro list``
#: prints this table, so a new tool registers here and nowhere else.
SUBCOMMANDS = {
    "bench": ("repro.harness.bench", "benchmark figure grids; perf gate"),
    "faults": ("repro.faults.cli", "crash-consistency fault campaigns"),
    "lint": ("repro.analyze.cli", "static layering/determinism gates"),
    "profile": ("repro.perf.cli", "phase-level profiling reports"),
    "serve": ("repro.serve.cli", "sharded job service with checkpoint/resume"),
    "trace": ("repro.obs.cli", "transaction tracing and abort forensics"),
    "traffic": ("repro.traffic.cli", "open-loop multi-tenant tail latency"),
}


def _run_one(
    name: str,
    quick: bool,
    scale: float,
    seed: int,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    serve_spool: Optional[str] = None,
) -> list:
    driver = ALL_FIGURES[name]
    stopwatch = Stopwatch()
    if name in _STATIC:
        results = driver()
    else:
        executor = None
        if serve_spool is not None:
            from .serve.client import ServiceExecutor

            executor = ServiceExecutor(serve_spool, title=name)
        results = driver(
            quick=quick, scale=scale, seed=seed, jobs=jobs, cache=cache,
            executor=executor,
        )
    if not isinstance(results, tuple):
        results = (results,)
    for result in results:
        print(result.pretty())
        print()
    print(f"[{name}] regenerated in {stopwatch} wall clock")
    return list(results)


def _print_listing() -> None:
    print("figures:")
    for name in sorted(ALL_FIGURES):
        print(f"  {name}")
    print("subcommands:")
    for name in sorted(SUBCOMMANDS):
        _, description = SUBCOMMANDS[name]
        print(f"  {name:<10}{description}")


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # A leading --engine applies to subcommands too: it becomes the process
    # default (REPRO_ENGINE) before dispatch, which is how the CI engine
    # matrix drives the faults/trace smokes once per engine.
    if argv and argv[0].startswith("--engine"):
        if argv[0] == "--engine" and len(argv) >= 2:
            engine, rest = argv[1], argv[2:]
        elif argv[0].startswith("--engine="):
            engine, rest = argv[0].split("=", 1)[1], argv[1:]
        else:
            engine, rest = None, argv
        if engine is not None and rest and rest[0] in SUBCOMMANDS:
            from .errors import ConfigError

            try:
                print(f"engine: {resolve_engine(engine)}")
            except ConfigError as exc:
                print(f"python -m repro: error: {exc}", file=sys.stderr)
                return 2
            os.environ[ENGINE_ENV_VAR] = engine
            module_path, _ = SUBCOMMANDS[rest[0]]
            return importlib.import_module(module_path).main(rest[1:])
    if argv and argv[0] in SUBCOMMANDS:
        module_path, _ = SUBCOMMANDS[argv[0]]
        return importlib.import_module(module_path).main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figure",
        help="one of: " + ", ".join(sorted(ALL_FIGURES)) + ", all, list"
        " (or a subcommand: " + ", ".join(sorted(SUBCOMMANDS)) + ")",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full sweep matrix instead of the quick one",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"machine scale factor (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per figure grid (results are bit-identical "
        "for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="on-disk result cache; unchanged points are not re-simulated",
    )
    parser.add_argument(
        "--serve",
        metavar="SPOOL",
        help="execute grids through the job service spool instead of a "
        "local pool (attach workers with 'python -m repro serve daemon')",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINE_CHOICES,
        help="sim-kernel engine (default: $REPRO_ENGINE or scalar); engines "
        "are bit-identical, so this only affects wall time",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the results as JSON"
    )
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write the results as Markdown"
    )
    args = parser.parse_args(argv)

    if args.engine is not None:
        # Figures build specs with engine=None (the process default), so the
        # flag becomes the process default: validated here, inherited by
        # local pool workers.  Bit-identical engines make this a pure
        # wall-time choice.
        print(f"engine: {resolve_engine(args.engine)}")
        os.environ[ENGINE_ENV_VAR] = args.engine

    if args.figure == "list":
        _print_listing()
        return 0
    if args.figure == "all":
        names = sorted(ALL_FIGURES)
    elif args.figure in ALL_FIGURES:
        names = [args.figure]
    else:
        parser.error(
            f"unknown figure {args.figure!r}; try 'python -m repro list'"
        )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    collected = []
    for name in names:
        collected.extend(
            _run_one(
                name, not args.full, args.scale, args.seed,
                jobs=args.jobs, cache=cache, serve_spool=args.serve,
            )
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(to_json(collected))
        print(f"wrote {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(to_markdown(collected))
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
