"""Tests for the word-addressed backing stores."""

from __future__ import annotations

import pytest

from repro.errors import AddressError
from repro.mem.address import MemoryKind
from repro.mem.backend import BackingStore
from repro.params import LatencyConfig


@pytest.fixture
def dram():
    return BackingStore(MemoryKind.DRAM, LatencyConfig())


@pytest.fixture
def nvm():
    return BackingStore(MemoryKind.NVM, LatencyConfig())


class TestLoadStore:
    def test_unwritten_reads_zero(self, dram):
        assert dram.load(0x1000) == 0

    def test_store_then_load(self, dram):
        dram.store(0x1000, 42)
        assert dram.load(0x1000) == 42

    def test_word_aliasing(self, dram):
        """Any byte address within a word maps to the same cell."""
        dram.store(0x1001, 7)
        assert dram.load(0x1000) == 7
        assert dram.load(0x1007) == 7
        assert dram.load(0x1008) == 0

    def test_non_int_value_rejected(self, dram):
        with pytest.raises(AddressError):
            dram.store(0x1000, "x")

    def test_word_count(self, dram):
        dram.store(0, 1)
        dram.store(8, 2)
        dram.store(8, 3)  # overwrite, not a new word
        assert dram.word_count() == 2


class TestLatencies:
    def test_dram_symmetric(self, dram):
        assert dram.read_ns == 82.0
        assert dram.write_ns == 82.0

    def test_nvm_asymmetric(self, nvm):
        assert nvm.read_ns == 175.0
        assert nvm.write_ns == 94.0


class TestVolatility:
    def test_wipe(self, dram):
        dram.store(0, 99)
        dram.wipe()
        assert dram.load(0) == 0
        assert dram.word_count() == 0

    def test_clone_contents_is_snapshot(self, nvm):
        nvm.store(0, 5)
        snapshot = nvm.clone_contents()
        nvm.store(0, 6)
        assert snapshot[0] == 5

    def test_words_iteration(self, nvm):
        nvm.store(0, 1)
        nvm.store(16, 2)
        assert dict(nvm.words()) == {0: 1, 16: 2}
