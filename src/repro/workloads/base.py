"""Common workload machinery: parameters, payload helpers, the base class.

Footprint control follows the paper (Section V): "We evaluated our design
with different footprints of transactions ... which we controlled with the
number of operations in a single batch" — and, for the PMDK benchmarks,
with the value size of each insert/update.  ``WorkloadParams.value_bytes``
and ``ops_per_tx`` are the two knobs; both are specified at *paper scale*
and shrunk by the machine's scale factor automatically, keeping the
footprint-to-cache ratio faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Generator, List, TYPE_CHECKING

from ..errors import ConfigError
from ..mem.address import MemoryKind
from ..params import LINE_SIZE
from ..runtime.txapi import MemoryContext, RawContext
from ..runtime.thread import ThreadApi

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.process import SimProcess
    from ..runtime.system import System

#: Lines written/read between scheduling yields inside a transaction body.
CHUNK_LINES = 16


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs shared by all benchmarks (paper-scale sizes)."""

    #: Threads this benchmark instance runs (the paper consolidates four
    #: benchmarks with four threads each).
    threads: int = 4
    #: Transactions each thread executes during the measured run.
    txs_per_thread: int = 8
    #: Value size per insert/update, bytes, at paper scale.
    value_bytes: int = 100 << 10
    #: Operations batched into one transaction.
    ops_per_tx: int = 1
    #: Key-space size.
    keys: int = 256
    #: Fraction of operations that are updates of existing keys (the rest
    #: insert fresh keys, cycling the space).
    update_ratio: float = 0.5
    #: Where the primary data structure lives.
    kind: MemoryKind = MemoryKind.NVM
    #: Keys pre-populated before measurement.
    initial_fill: int = 64

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigError("threads must be >= 1")
        if self.txs_per_thread < 1:
            raise ConfigError("txs_per_thread must be >= 1")
        if self.value_bytes < 8:
            raise ConfigError("value_bytes must be >= 8")
        if self.ops_per_tx < 1:
            raise ConfigError("ops_per_tx must be >= 1")
        if not 0 <= self.update_ratio <= 1:
            raise ConfigError("update_ratio must be in [0, 1]")
        if self.initial_fill > self.keys:
            raise ConfigError("initial_fill cannot exceed the key space")

    def with_(self, **changes) -> "WorkloadParams":
        return replace(self, **changes)

    def scaled_value_bytes(self, scale: float) -> int:
        """The value size after machine scaling, line-aligned, >= 1 line."""
        scaled = int(self.value_bytes * scale)
        return max(LINE_SIZE, scaled - scaled % LINE_SIZE or LINE_SIZE)


def write_payload(
    ctx: MemoryContext, addr: int, nbytes: int, tag: int
) -> Generator[None, None, None]:
    """Fill a payload block inside a transaction, yielding between chunks."""
    offset = 0
    while offset < nbytes:
        chunk = min(CHUNK_LINES * LINE_SIZE, nbytes - offset)
        ctx.write_block(addr + offset, chunk, tag)
        offset += chunk
        yield


def read_payload(
    ctx: MemoryContext, addr: int, nbytes: int
) -> Generator[None, None, int]:
    """Scan a payload block, yielding between chunks; returns first word."""
    first = 0
    offset = 0
    while offset < nbytes:
        chunk = min(CHUNK_LINES * LINE_SIZE, nbytes - offset)
        value = ctx.read_block(addr + offset, chunk)
        if offset == 0:
            first = value
        offset += chunk
        yield
    return first


class PayloadPool:
    """Pre-allocated per-key payload blocks (no allocator churn on retry)."""

    def __init__(
        self, system: "System", keys: int, nbytes: int, kind: MemoryKind
    ) -> None:
        self.nbytes = nbytes
        self._blocks = [system.heap.alloc(nbytes, kind) for _ in range(keys)]

    def block_for(self, key: int) -> int:
        return self._blocks[key % len(self._blocks)]


class Workload:
    """Base class: one benchmark instance bound to one simulated process."""

    #: Registry name (Table IV row).
    name = "abstract"

    def __init__(
        self,
        system: "System",
        process: "SimProcess",
        params: WorkloadParams,
    ) -> None:
        self.system = system
        self.process = process
        self.params = params
        self.value_bytes = params.scaled_value_bytes(system.machine.scale)
        self.raw = RawContext(system.controller)
        self._rng = system.rng.fork(process.pid).stream(f"workload:{self.name}")

    # -- lifecycle -------------------------------------------------------------

    def setup(self) -> None:
        """Pre-populate structures (untimed, via :class:`RawContext`)."""

    def thread_bodies(self) -> List[Callable[[ThreadApi], Generator]]:
        """One generator function per thread of this benchmark."""
        raise NotImplementedError

    def spawn(self) -> None:
        """Set up and launch all threads on this workload's process."""
        self.setup()
        for index, body in enumerate(self.thread_bodies()):
            self.process.thread(body, name=f"{self.name}.t{index}")

    # -- verification hooks -------------------------------------------------------

    def verify(self) -> bool:
        """Post-run integrity check (override where meaningful)."""
        return True

    # -- key sequencing -------------------------------------------------------------

    def key_stream(self, thread_index: int) -> Generator[int, None, None]:
        """Deterministic per-thread mix of updates and fresh inserts.

        Keys are sharded per thread, as scalable KV benchmarks do: at the
        paper's key-space sizes (millions of pairs) two threads virtually
        never touch the same pair, and sharding reproduces that collision
        rate on the scaled-down space.  True conflicts still arise from
        shared index interior (B-tree splits, skip-list towers, bucket
        chains).
        """
        rng = self.system.rng.fork(
            self.process.pid * 1000 + thread_index
        ).stream("keys")
        threads = self.params.threads
        fill = max(1, min(self.params.initial_fill, self.params.keys))
        shard_lo = (fill * thread_index) // threads
        shard_hi = max(shard_lo + 1, (fill * (thread_index + 1)) // threads)
        fresh_space = max(threads, self.params.keys - self.params.initial_fill)
        fresh_lo = (fresh_space * thread_index) // threads
        fresh_width = max(
            1, (fresh_space * (thread_index + 1)) // threads - fresh_lo
        )
        fresh_count = 0
        while True:
            if rng.random() < self.params.update_ratio:
                yield rng.randrange(shard_lo, shard_hi)
            else:
                offset = fresh_lo + fresh_count % fresh_width
                yield min(
                    self.params.keys - 1, self.params.initial_fill + offset
                )
                fresh_count += 1
