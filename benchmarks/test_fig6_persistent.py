"""Figure 6: persistent-transaction throughput, normalised to LLC-Bounded.

Paper shape: signature-only underperforms even the bounded baseline; UHTM
recovers most of the Ideal design's advantage; isolation (_opt) >= _sig.
"""

from __future__ import annotations

import pytest

from repro.harness.figures import fig6, fig6_grid


def test_fig6(benchmark, quick, jobs, show):
    result = benchmark.pedantic(
        lambda: fig6(quick=quick, jobs=jobs), rounds=1, iterations=1
    )
    show(result)
    sig_only_col = next(c for c in result.columns if c.startswith("SigOnly"))
    opt_col = next(c for c in result.columns if c.endswith("_opt"))
    ideal = result.column("Ideal")
    sig_only = result.column(sig_only_col)
    uhtm_opt = result.column(opt_col)
    # Ideal beats the baseline overall; UHTM lands close to Ideal.
    assert sum(ideal) / len(ideal) > 1.2
    assert sum(uhtm_opt) / len(uhtm_opt) > 1.2
    # Signature-only never approaches the unbounded designs.
    assert sum(sig_only) / len(sig_only) < sum(uhtm_opt) / len(uhtm_opt)


@pytest.mark.smoke
def test_fig6_smoke(smoke_point):
    """One tiny Fig. 6 point must still build and simulate end-to-end."""
    result = smoke_point(fig6_grid)
    assert result.committed_ops > 0
    assert result.verified
