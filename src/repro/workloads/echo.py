"""The Echo key-value store (WHISPER suite, Table IV).

"The master thread of the Echo key-value store manages a persistent hash
table while clients threads batch and send updates to the master."

Clients assemble update batches (cheap local work plus queue traffic) and
hand them to the master, which applies each batch to the NVM hash table in
one durable transaction.  For the Figure 8 experiment, a configurable
fraction of client transactions are *long-running read-only* scans — a
batch of gets over a contiguous window of cold keys totalling
``long_scan_bytes`` — which the issuing client executes itself against the
shared table.  Updates target a hot key region disjoint from the scan
windows, mirroring the paper's setup where puts and the random 8-32 MB
read sets rarely touch the same pairs.

Long-transaction occurrences are scheduled deterministically: with ratio r
and N total client transactions, ``max(1, round(N * r))`` of them are long
scans, evenly spaced — so small ratios still materialise in short runs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Set, Tuple

from ..mem.address import MemoryKind
from .base import (
    PayloadPool,
    Workload,
    WorkloadParams,
    read_payload,
    write_payload,
)
from .hashmap import TxHashMap

#: Cost of one request enqueue/dequeue on the client-master queue.
_QUEUE_RECORD_NS = 150.0


class EchoWorkload(Workload):
    """Insert/update KV-pairs to a persistent hash table [5]."""

    name = "echo"

    def __init__(
        self,
        system,
        process,
        params: WorkloadParams,
        long_tx_ratio: float = 0.0,
        long_scan_bytes: int = 8 << 20,
        hot_keys: Optional[int] = None,
        horizon_ns: float = 0.0,
        queue_cap: int = 4,
    ) -> None:
        super().__init__(system, process, params)
        self.table: Optional[TxHashMap] = None
        self.pool: Optional[PayloadPool] = None
        #: Pending update batches: lists of (key, tag).
        self.queue: Deque[List[Tuple[int, int]]] = deque()
        self.long_tx_ratio = long_tx_ratio
        self.long_scan_bytes = max(
            64, int(long_scan_bytes * system.machine.scale)
        )
        #: Updates target keys [0, hot_keys); scans read [hot_keys, fill).
        self.hot_keys = hot_keys if hot_keys is not None else params.initial_fill
        #: Fixed simulated-time window (0 = fixed-work mode).  In horizon
        #: mode clients are closed-loop (bounded queue) and every thread
        #: stops issuing once its clock passes the horizon — the paper's
        #: steady-state throughput measurement.
        self.horizon_ns = horizon_ns
        self.queue_cap = queue_cap
        self._clients_done = 0
        self._clients_total = 0
        self.long_txs_executed = 0
        self._scan_keys: List[int] = []

    def setup(self) -> None:
        nbuckets = max(128, self.params.initial_fill)
        self.table = TxHashMap.create(
            self.system.heap, self.raw, MemoryKind.NVM, nbuckets=nbuckets
        )
        self.pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, MemoryKind.NVM
        )
        for key in range(self.params.initial_fill):
            self.table.insert(self.raw, key, self.pool.block_for(key))
        # Scan targets: cold keys whose hash chains share no bucket with a
        # hot key.  At the paper's scale the store holds millions of pairs,
        # so an 8-32 MB random read set virtually never lands on a chain a
        # concurrent put is updating; this filter reproduces that sparse
        # overlap on the scaled-down store.
        hot_buckets = {
            TxHashMap._hash(key) % nbuckets for key in range(self.hot_keys)
        }
        self._scan_keys = [
            key
            for key in range(self.hot_keys, self.params.initial_fill)
            if TxHashMap._hash(key) % nbuckets not in hot_buckets
        ]

    def thread_bodies(self) -> List[Callable]:
        """One master plus (threads - 1) clients (min one client)."""
        clients = max(1, self.params.threads - 1)
        self._clients_total = clients
        long_slots = self._schedule_long_txs(clients)
        bodies: List[Callable] = [self._make_master()]
        bodies.extend(
            self._make_client(i, long_slots.get(i, set())) for i in range(clients)
        )
        return bodies

    def _schedule_long_txs(self, clients: int) -> dict:
        """Evenly spaced (client, tx_index) slots for long scans."""
        total_txs = clients * self.params.txs_per_thread
        if self.long_tx_ratio <= 0 or total_txs == 0:
            return {}
        count = max(1, round(total_txs * self.long_tx_ratio))
        slots: dict = {}
        stride = total_txs / count
        for i in range(count):
            global_index = int(i * stride + stride / 2)
            client = global_index % clients
            tx_index = global_index // clients
            slots.setdefault(client, set()).add(tx_index)
        return slots

    def _make_master(self) -> Callable:
        def body(api) -> Generator[None, None, None]:
            while True:
                if self.horizon_ns and api.thread.clock_ns >= self.horizon_ns:
                    return
                if not self.queue:
                    if self._clients_done >= self._clients_total:
                        return
                    api.charge(_QUEUE_RECORD_NS)
                    yield
                    continue
                batch = self.queue.popleft()
                api.charge(_QUEUE_RECORD_NS * len(batch))

                def work(tx, batch=batch):
                    for key, tag in batch:
                        payload = self.pool.block_for(key)
                        yield from write_payload(
                            tx, payload, self.value_bytes, tag
                        )
                        self.table.insert(tx, key, payload)
                        yield

                yield from api.run_transaction(work, ops=len(batch))

        return body

    def _make_client(self, client_index: int, long_slots: Set[int]) -> Callable:
        rng = self.system.rng.fork(
            self.process.pid * 31 + client_index
        ).stream("echo_client")

        def body(api) -> Generator[None, None, None]:
            tx_index = 0
            while self._client_has_work(api, tx_index):
                if self._is_long_slot(tx_index, long_slots):
                    yield from self._long_read_only(api, rng)
                    tx_index += 1
                    continue
                if self.horizon_ns:
                    # Closed-loop client: wait for queue space.
                    while len(self.queue) >= self.queue_cap:
                        if api.thread.clock_ns >= self.horizon_ns:
                            self._clients_done += 1
                            return
                        api.charge(_QUEUE_RECORD_NS)
                        yield
                batch = [
                    (rng.randrange(max(1, self.hot_keys)), tx_index + 1)
                    for _ in range(self.params.ops_per_tx)
                ]
                # Batch assembly: local (non-transactional) work.
                api.charge(_QUEUE_RECORD_NS * len(batch))
                self.queue.append(batch)
                tx_index += 1
                yield
            self._clients_done += 1

        return body

    def _client_has_work(self, api, tx_index: int) -> bool:
        if self.horizon_ns:
            return api.thread.clock_ns < self.horizon_ns
        return tx_index < self.params.txs_per_thread

    def _is_long_slot(self, tx_index: int, long_slots: Set[int]) -> bool:
        if self.horizon_ns:
            if self.long_tx_ratio <= 0:
                return False
            # Phase-shifted so the first scan lands mid-stride, not at the
            # very end of a short window.
            phase = 0.5
            return int((tx_index + 1) * self.long_tx_ratio + phase) > int(
                tx_index * self.long_tx_ratio + phase
            )
        return tx_index in long_slots

    def _long_read_only(self, api, rng) -> Generator[None, None, None]:
        """A read-only transaction scanning ~long_scan_bytes of cold KV pairs."""
        self.long_txs_executed += 1
        reads_needed = max(1, self.long_scan_bytes // self.value_bytes)
        candidates = self._scan_keys or list(
            range(self.hot_keys, max(self.hot_keys + 1, self.params.initial_fill))
        )
        window = len(candidates)
        start = rng.randrange(window) if window > reads_needed else 0
        targets = [candidates[(start + i) % window] for i in range(reads_needed)]

        def work(tx, targets=targets):
            for key in targets:
                payload = self.table.get(tx, key)
                if payload is not None:
                    yield from read_payload(tx, payload, self.value_bytes)
                yield

        yield from api.run_transaction(work, ops=1)

    def verify(self) -> bool:
        if self.horizon_ns:
            # Horizon mode cuts the run mid-stream: leftover queue entries
            # are expected; only structural integrity must hold.
            return self.table.check_integrity(self.raw)
        return (
            not self.queue
            and self._clients_done >= self._clients_total
            and self.table.check_integrity(self.raw)
        )
