"""GOOD fixture: all off-chip movement through controller entry points."""


class CommitPath:
    def __init__(self, controller):
        self.controller = controller

    def publish(self, words):
        self.controller.publish_dram_words(words)

    def commit(self, tx_id, lines):
        return self.controller.commit_nvm_transaction(tx_id, lines)
