"""``python -m repro bench`` — grid runs with per-point timing and caching.

Runs the experiment grid behind one or more figures through the parallel
executor, measures every point with :class:`~repro.harness.timer.Stopwatch`,
and writes one ``BENCH_<figure>.json`` perf-trajectory artifact per figure::

    python -m repro bench fig6 --jobs 4 --cache-dir .repro-cache
    python -m repro bench --jobs 8 --verify          # all dynamic figures

The artifact records, for each point: its key, label, spec fingerprint,
whether it was served from the cache, and the simulation wall time.  A
warm-cache re-run reports ``simulated: 0`` — nothing is recomputed unless a
spec (or the cache version stamp) changed.

``--verify`` re-runs one pooled point serially and asserts the bit-identical
parallelism contract before any result is published to the cache.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .cache import ResultCache
from .config import DEFAULT_SCALE
from .figures import FIGURE_GRIDS
from .parallel import GridOutcome, run_grid_detailed
from .report import format_table
from .timer import Stopwatch


def _artifact(
    figure: str, outcome: GridOutcome, args: argparse.Namespace, total_s: float
) -> dict:
    return {
        "figure": figure,
        "quick": not args.full,
        "scale": args.scale,
        "seed": args.seed,
        "jobs": args.jobs,
        "total_s": round(total_s, 3),
        "points_total": len(outcome.runs),
        "simulated": outcome.simulated,
        "cache_hits": outcome.cache_hits,
        "points": [
            {
                "key": list(run.key) if isinstance(run.key, tuple) else run.key,
                "label": run.label,
                "fingerprint": run.fingerprint,
                "cached": run.cached,
                "elapsed_s": round(run.elapsed_s, 4),
            }
            for run in outcome.runs
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Time figure grids point-by-point, optionally in "
        "parallel and against a result cache.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help="dynamic figures to bench (default: all of "
        + ", ".join(sorted(FIGURE_GRIDS))
        + ")",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="bench the paper's full sweep matrix instead of the quick one",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"machine scale factor (default {DEFAULT_SCALE:g})",
    )
    parser.add_argument("--seed", type=int, default=2020)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the grid (results are bit-identical "
        "for any value)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result-cache directory; unchanged points are not re-simulated",
    )
    parser.add_argument(
        "--out-dir",
        metavar="PATH",
        default=".",
        help="where to write the BENCH_<figure>.json artifacts (default: .)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="re-run one pooled point serially and assert the bit-identical "
        "parallelism contract",
    )
    args = parser.parse_args(argv)

    names = args.figures or sorted(FIGURE_GRIDS)
    unknown = [name for name in names if name not in FIGURE_GRIDS]
    if unknown:
        parser.error(
            f"unknown figure(s) {', '.join(unknown)}; benchable figures: "
            + ", ".join(sorted(FIGURE_GRIDS))
        )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    summary_rows = []
    for name in names:
        points = FIGURE_GRIDS[name](
            quick=not args.full, scale=args.scale, seed=args.seed
        )
        stopwatch = Stopwatch()
        outcome = run_grid_detailed(
            points, jobs=args.jobs, cache=cache, verify_sample=args.verify
        )
        total_s = stopwatch.elapsed_s
        artifact_path = out_dir / f"BENCH_{name}.json"
        artifact_path.write_text(
            json.dumps(_artifact(name, outcome, args, total_s), indent=2)
            + "\n",
            encoding="utf-8",
        )
        slowest = max(outcome.runs, key=lambda run: run.elapsed_s, default=None)
        summary_rows.append(
            [
                name,
                len(outcome.runs),
                outcome.simulated,
                outcome.cache_hits,
                f"{total_s:.1f}s",
                f"{slowest.elapsed_s:.1f}s" if slowest else "-",
            ]
        )
        print(f"[{name}] {len(outcome.runs)} points in {total_s:.1f}s "
              f"({outcome.simulated} simulated, {outcome.cache_hits} cached) "
              f"-> {artifact_path}")
    print()
    print(
        format_table(
            ["figure", "points", "simulated", "cached", "wall", "slowest point"],
            summary_rows,
            title=f"bench: jobs={args.jobs}"
            + (f", cache={args.cache_dir}" if args.cache_dir else ""),
        )
    )
    if cache is not None:
        stats = cache.stats
        print(
            f"\ncache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.stores} stores, {stats.simulations} simulations"
            + (f", {stats.corrupt} corrupt entries skipped" if stats.corrupt else "")
        )
    return 0
