"""White-box tests of the hybrid KV stores' internal protocols."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.workloads import (
    DualKVWorkload,
    HybridIndexWorkload,
    WorkloadParams,
)


def build(workload_cls, seed=3, **param_overrides):
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(), seed=seed
    )
    proc = system.process("kv")
    fields = dict(
        threads=4, txs_per_thread=4, value_bytes=16 << 10,
        keys=128, initial_fill=32,
    )
    fields.update(param_overrides)
    workload = workload_cls(system, proc, WorkloadParams(**fields))
    return system, workload


class TestDualKV:
    def test_thread_split_has_both_roles(self):
        system, workload = build(DualKVWorkload)
        workload.setup()
        bodies = workload.thread_bodies()
        assert len(bodies) == 4
        assert workload._foreground_total == 2

    def test_crl_fully_drained(self):
        system, workload = build(DualKVWorkload)
        workload.spawn()
        system.run()
        assert not workload.crl
        assert workload.verify()

    def test_nvm_map_mirrors_dram_map(self):
        system, workload = build(DualKVWorkload)
        workload.spawn()
        system.run()
        dram_keys = sorted(workload.dram_map.keys(workload.raw))
        nvm_keys = sorted(workload.nvm_map.keys(workload.raw))
        assert dram_keys == nvm_keys

    def test_foreground_transactions_are_single_op(self):
        """Each foreground user request is its own (small) transaction."""
        system, workload = build(DualKVWorkload, ops_per_tx=4)
        workload.spawn()
        system.run()
        # 2 fg threads x 4 batches x 4 ops as single-op txs, plus bg
        # replay batches: fg contributes 32 committed single-op txs.
        assert system.stats.counter("ops.committed") >= 32 + 8

    def test_pools_are_separate_media(self):
        system, workload = build(DualKVWorkload)
        workload.setup()
        space = system.controller.address_space
        assert space.is_dram(workload.dram_pool.block_for(0))
        assert space.is_nvm(workload.nvm_pool.block_for(0))


class TestHybridIndex:
    def test_indexes_live_in_different_media(self):
        system, workload = build(HybridIndexWorkload)
        workload.setup()
        space = system.controller.address_space
        assert space.is_dram(workload.btree_index.base)
        assert space.is_nvm(workload.hash_index.base)
        assert space.is_nvm(workload.pool.block_for(0))

    def test_scan_uses_dram_btree_and_returns_records(self):
        system, workload = build(HybridIndexWorkload)
        workload.setup()
        pairs = workload.btree_index.scan(workload.raw, 5, 12)
        assert [k for k, _ in pairs] == list(range(5, 13))
        for key, record in pairs:
            assert record == workload.pool.block_for(key)

    def test_cross_index_agreement_after_run(self):
        system, workload = build(HybridIndexWorkload)
        workload.spawn()
        system.run()
        assert workload.verify()

    def test_abort_never_splits_the_indexes(self):
        """Force conflicts; the two indexes must never disagree."""
        system, workload = build(
            HybridIndexWorkload, keys=16, initial_fill=8, update_ratio=0.0
        )
        workload.spawn()
        system.run()
        assert workload.verify()
        hash_keys = sorted(workload.hash_index.keys(workload.raw))
        btree_keys = workload.btree_index.keys(workload.raw)
        assert hash_keys == btree_keys
