"""Shrink a failing fault plan to the smallest reproducing one.

Campaign runs are deterministic (fresh machine, fixed seed), so "does this
plan still fail?" is a pure predicate and shrinking is ordinary
delta-debugging:

1. **Drop steps.**  Try removing each step (stacked recovery crashes first);
   keep any removal after which the oracle still flags an inconsistency.
2. **Shrink ordinals.**  For each surviving step, try 1, half, and
   predecessor ordinals until no smaller one reproduces.

The result is the one-liner for a regression test: the least machinery that
still breaks recovery.  Every candidate evaluation is a full run; the
``budget`` caps them so a pathological plan cannot stall a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from .plan import CrashPoint, FaultPlan, TriggerKind


@dataclass
class MinimizationResult:
    """The shrunk plan plus how much work the search did."""

    plan: FaultPlan
    runs: int
    #: True when the input plan failed the oracle at all (a plan that does
    #: not reproduce is returned unchanged with this flag cleared).
    reproduced: bool = True


def minimize_plan(
    config, plan: FaultPlan, budget: int = 64
) -> MinimizationResult:
    """Return the smallest plan (steps, then ordinals) that still fails."""
    from .campaign import execute_plan  # deferred: campaign imports this module

    runs = 0

    def fails(candidate: FaultPlan) -> bool:
        nonlocal runs
        runs += 1
        return not execute_plan(config, candidate).ok

    if not fails(plan):
        return MinimizationResult(plan=plan, runs=runs, reproduced=False)

    # Phase 1: drop steps, later (stacked recovery) steps first.
    current = plan
    changed = True
    while changed and runs < budget:
        changed = False
        for index in reversed(range(len(current.steps))):
            candidate = FaultPlan(
                current.steps[:index] + current.steps[index + 1:]
            )
            if fails(candidate):
                current = candidate
                changed = True
                break
            if runs >= budget:
                break

    # Phase 2: shrink each step's ordinal (sim-time points shrink at_ns).
    # Candidates are tried smallest-first, so a bug that reproduces at the
    # floor (ordinal 1) costs a single extra run.
    steps = list(current.steps)
    for index in range(len(steps)):
        improved = True
        while improved and runs < budget:
            improved = False
            for candidate_step in _shrink_candidates(steps[index]):
                candidate = FaultPlan(
                    tuple(steps[:index])
                    + (candidate_step,)
                    + tuple(steps[index + 1:])
                )
                if fails(candidate):
                    steps[index] = candidate_step
                    improved = True
                    break
                if runs >= budget:
                    break
    return MinimizationResult(plan=FaultPlan(tuple(steps)), runs=runs)


def _shrink_candidates(step: CrashPoint):
    """Strictly smaller variants of one step, smallest first."""
    if step.kind is TriggerKind.SIM_TIME:
        seen = set()
        for at_ns in (0.0, step.at_ns / 2):
            if at_ns < step.at_ns and at_ns not in seen:
                seen.add(at_ns)
                yield CrashPoint(step.kind, at_ns=at_ns)
        return
    seen = set()
    for ordinal in (1, step.ordinal // 2, step.ordinal - 1):
        if 1 <= ordinal < step.ordinal and ordinal not in seen:
            seen.add(ordinal)
            yield CrashPoint(step.kind, ordinal=ordinal)
