"""White-box tests of the hybrid version-management protocol (Section IV-B/C)."""

from __future__ import annotations

import pytest

from repro import DramLogPolicy, HTMConfig, MachineConfig, SignatureConfig, System
from repro.errors import AbortReason
from repro.mem.address import MemoryKind
from repro.mem.log import RecordKind
from repro.params import LINE_SIZE
from repro.sim.engine import SimThread


def make_system(scale=1 / 256, **kwargs):
    return System(MachineConfig.scaled(scale, cores=4), HTMConfig(**kwargs))


def make_thread(tid=0):
    return SimThread(tid, f"t{tid}", lambda t: iter(()))


def spill_dram_tx(system, nlines=2048):
    thread = make_thread()
    base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
    tx = system.htm.begin(thread, 0, 1, 1)
    for i in range(nlines):
        system.htm.tx_write(tx, base + i * LINE_SIZE, i + 1)
    assert tx.dram_overflowed_lines
    return tx, base, nlines


class TestUndoPolicy:
    def test_spilled_lines_are_updated_in_place(self):
        system = make_system(dram_log_policy=DramLogPolicy.UNDO)
        tx, base, nlines = spill_dram_tx(system)
        spilled = sorted(tx.dram_overflowed_lines)
        # Under eager versioning the in-place location already holds the
        # new value for spilled lines.
        for line in spilled[: min(16, len(spilled))]:
            index = (line - base) // LINE_SIZE
            assert system.controller.dram.load(line) == index + 1

    def test_undo_records_hold_old_values(self):
        system = make_system(dram_log_policy=DramLogPolicy.UNDO)
        tx, base, _ = spill_dram_tx(system)
        records = system.controller.dram_log.records_of(tx.tx_id)
        assert records
        assert all(r.kind is RecordKind.UNDO for r in records)
        # Old values were all zero (fresh allocation):
        assert all(v == 0 for r in records for _, v in r.words)

    def test_commit_appends_commit_mark(self):
        system = make_system(dram_log_policy=DramLogPolicy.UNDO)
        tx, base, nlines = spill_dram_tx(system)
        system.htm.commit(tx)
        # Background reclamation may already have removed the records, but
        # every word must be in place.
        for i in range(nlines):
            assert system.controller.dram.load(base + i * LINE_SIZE) == i + 1


class TestRedoPolicy:
    def test_spilled_lines_left_unmodified_in_place(self):
        system = make_system(dram_log_policy=DramLogPolicy.REDO)
        tx, base, _ = spill_dram_tx(system)
        for line in sorted(tx.dram_overflowed_lines)[:16]:
            assert system.controller.dram.load(line) == 0  # lazy versioning

    def test_own_reads_see_buffered_values_with_indirection_charge(self):
        system = make_system(dram_log_policy=DramLogPolicy.REDO)
        tx, base, _ = spill_dram_tx(system)
        spilled = sorted(tx.dram_overflowed_lines)[0]
        index = (spilled - base) // LINE_SIZE
        before = tx.thread.clock_ns
        assert system.htm.tx_read(tx, spilled) == index + 1
        charged = tx.thread.clock_ns - before
        # Access latency plus the log-indirection penalty:
        assert charged >= system.controller.redo_dram_indirection_latency()
        assert system.stats.counter("dram.redo_read_indirections") == 1

    def test_commit_copies_into_place(self):
        system = make_system(dram_log_policy=DramLogPolicy.REDO)
        tx, base, nlines = spill_dram_tx(system)
        system.htm.commit(tx)
        for i in range(nlines):
            assert system.controller.dram.load(base + i * LINE_SIZE) == i + 1

    def test_abort_is_cheap_under_redo(self):
        """The Figure 10 trade-off: redo aborts cheap, undo aborts costly."""
        undo_system = make_system(dram_log_policy=DramLogPolicy.UNDO)
        undo_tx, _, _ = spill_dram_tx(undo_system)
        before = undo_tx.thread.clock_ns
        undo_system.htm._abort(undo_tx, AbortReason.EXPLICIT)
        undo_cost = undo_tx.thread.clock_ns - before

        redo_system = make_system(dram_log_policy=DramLogPolicy.REDO)
        redo_tx, _, _ = spill_dram_tx(redo_system)
        before = redo_tx.thread.clock_ns
        redo_system.htm._abort(redo_tx, AbortReason.EXPLICIT)
        redo_cost = redo_tx.thread.clock_ns - before
        assert redo_cost < undo_cost

    def test_commit_is_cheap_under_undo(self):
        undo_system = make_system(dram_log_policy=DramLogPolicy.UNDO)
        undo_tx, _, _ = spill_dram_tx(undo_system)
        before = undo_tx.thread.clock_ns
        undo_system.htm.commit(undo_tx)
        undo_cost = undo_tx.thread.clock_ns - before

        redo_system = make_system(dram_log_policy=DramLogPolicy.REDO)
        redo_tx, _, _ = spill_dram_tx(redo_system)
        before = redo_tx.thread.clock_ns
        redo_system.htm.commit(redo_tx)
        redo_cost = redo_tx.thread.clock_ns - before
        assert undo_cost < redo_cost


class TestHybridCommitProtocol:
    def test_parallel_commit_charges_max_not_sum(self):
        """Section IV-B: "UHTM starts a commit protocol to DRAM and NVM in
        parallel" — the charge is the slower of the two, not their sum."""
        system = make_system()
        thread = make_thread()
        nlines = 2048
        dram_base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        nvm_base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.NVM)
        tx = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines):
            system.htm.tx_write(tx, dram_base + i * LINE_SIZE, 1)
            system.htm.tx_write(tx, nvm_base + i * LINE_SIZE, 1)
        walk_ns = len(tx.overflow_list) * system.machine.latency.llc_ns
        nvm_side = (
            system.machine.latency.nvm_write_ns
            + nlines * system.machine.latency.dram_cache_ns
        )
        dram_side = system.machine.latency.dram_ns  # one commit mark
        before = thread.clock_ns
        system.htm.commit(tx)
        charged = thread.clock_ns - before
        assert charged == pytest.approx(walk_ns + max(nvm_side, dram_side), rel=0.2)

    def test_abort_restores_both_memories_consistently(self):
        """Figure 1's requirement: aborting a hybrid transaction reverts
        DRAM (undo) and NVM (invalidate) together."""
        system = make_system()
        thread = make_thread()
        nlines = 1024
        dram_base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.DRAM)
        nvm_base = system.heap.alloc(nlines * LINE_SIZE, MemoryKind.NVM)
        for i in range(nlines):
            system.controller.dram.store(dram_base + i * LINE_SIZE, 7)
            system.controller.nvm.store(nvm_base + i * LINE_SIZE, 7)
        tx = system.htm.begin(thread, 0, 1, 1)
        for i in range(nlines):
            system.htm.tx_write(tx, dram_base + i * LINE_SIZE, 99)
            system.htm.tx_write(tx, nvm_base + i * LINE_SIZE, 99)
        system.htm._abort(tx, AbortReason.EXPLICIT)
        for i in range(nlines):
            assert system.controller.dram.load(dram_base + i * LINE_SIZE) == 7
            assert system.controller.load_word(nvm_base + i * LINE_SIZE) == 7
