"""The fault injector: counts architectural events, cuts power on cue.

One :class:`FaultInjector` is installed per simulated machine (via
:meth:`repro.runtime.system.System.install_fault_injector`).  Every hook
point — NVM log appends, the commit-mark window, the mid-commit window,
engine steps, recovery replay — reports its event here.  Unarmed, the
injector just counts, which is how a campaign's probe run learns the event
space it can crash in.  Armed with a :class:`~repro.faults.plan.CrashPoint`,
it raises :class:`~repro.errors.PowerFailure` the instant the point fires.

The injector can also carry a *seeded durability bug* for oracle
self-validation: ``suppress_commit_marks=True`` makes the controller skip
the durable commit mark while the rest of the commit protocol proceeds —
the classic "forgot the fence" bug that leaves every commit torn.  A sound
oracle must flag any crash after such a commit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import PowerFailure
from ..mem.log import LogRecord, RecordKind
from .plan import CrashPoint, TriggerKind


class FaultInjector:
    """Counts fault-hook events and fires an armed crash point."""

    def __init__(self, suppress_commit_marks: bool = False) -> None:
        #: Seeded durability bug: drop every durable commit mark.
        self.suppress_commit_marks = suppress_commit_marks
        self.counts: Dict[TriggerKind, int] = {k: 0 for k in TriggerKind}
        self._armed: Optional[CrashPoint] = None
        #: Crash points that actually fired, in order.
        self.fired: List[CrashPoint] = []

    # -- arming ------------------------------------------------------------

    def arm(self, point: CrashPoint) -> None:
        """Fire ``point`` when its event count is reached (from now on).

        Counts are *not* reset: a recovery-phase point armed for a second
        recovery attempt counts that attempt's replays on top of earlier
        ones, so campaigns arm with cumulative ordinals.  Run-phase plans
        arm before the run starts, so their ordinals are absolute anyway.
        """
        self._armed = point

    def disarm(self) -> None:
        self._armed = None

    @property
    def armed(self) -> Optional[CrashPoint]:
        return self._armed

    def reset_count(self, kind: TriggerKind) -> None:
        self.counts[kind] = 0

    # -- the trigger -------------------------------------------------------

    def _bump(self, kind: TriggerKind, now_ns: float = 0.0) -> None:
        self.counts[kind] += 1
        point = self._armed
        if point is None or point.kind is not kind:
            return
        if kind is TriggerKind.SIM_TIME:
            if now_ns < point.at_ns:
                return
        elif self.counts[kind] != point.ordinal:
            return
        self.fired.append(point)
        self._armed = None
        raise PowerFailure(point.describe())

    # -- hook points (called by the instrumented machine) -------------------

    def observe_nvm_log(self, record: LogRecord) -> None:
        """NVM-log append observer; data records are the crash window."""
        if record.kind is RecordKind.REDO:
            self._bump(TriggerKind.NVM_LOG_APPEND)

    def before_commit_mark(self, tx_id: int) -> bool:
        """About to write a durable commit mark; returns whether to write it."""
        self._bump(TriggerKind.PRE_COMMIT_MARK)
        return not self.suppress_commit_marks

    def after_commit_mark(self, tx_id: int) -> None:
        self._bump(TriggerKind.COMMIT_MARK)

    def on_mid_commit(self, tx_id: int) -> None:
        self._bump(TriggerKind.MID_COMMIT)

    def on_engine_step(self, now_ns: float) -> None:
        self._bump(TriggerKind.ENGINE_STEP)
        # SIM_TIME rides the same hook but fires on the clock, not a count.
        point = self._armed
        if point is not None and point.kind is TriggerKind.SIM_TIME:
            self._bump(TriggerKind.SIM_TIME, now_ns=now_ns)

    def on_recovery_replay(self, replayed_so_far: int) -> None:
        self._bump(TriggerKind.RECOVERY_REPLAY)
