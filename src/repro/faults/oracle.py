"""The crash-consistency oracle: a pure-Python shadow of durable state.

The oracle maintains a reference model of what NVM *must* contain after any
crash + recovery: exactly the writes of architecturally committed
transactions, applied in commit order, over the pre-campaign baseline — no
lost commits, no torn commits, no leakage of uncommitted data.

It observes the machine at three points, all independent of the recovery
code under test:

* ``controller.on_nvm_commit`` — the architectural commit point.  The word
  values of the committing transaction's NVM write-set are folded into the
  reference model *here*, not parsed back out of the log, so a durability
  bug that corrupts the log (e.g. a dropped commit mark) cannot also
  corrupt the oracle's expectation.
* the NVM log's append observer — every redo-logged word is recorded as
  *touched*, giving the anti-leakage check its universe: a touched word
  that never committed must still read its baseline value after recovery.
* ``controller.on_nontx_nvm_store`` — non-transactional NVM stores carry no
  durability guarantee (they may land in the volatile DRAM cache), so those
  words are excluded from verification rather than asserted either way.

``verify`` is meaningful only after a crash + full recovery, when the DRAM
cache is empty and NVM in-place contents are the whole story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, TYPE_CHECKING

from ..mem.address import word_of
from ..mem.log import LogRecord, RecordKind

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.system import System

#: Cap on recorded failure detail lines (campaigns run hundreds of plans).
_MAX_FAILURES = 16


@dataclass
class OracleVerdict:
    """The outcome of one post-recovery verification."""

    ok: bool
    #: Human-readable descriptions of the first few mismatches.
    failures: List[str] = field(default_factory=list)
    committed_txs: int = 0
    words_checked: int = 0
    #: Words excluded because non-transactional stores touched them.
    words_excluded: int = 0

    def describe(self) -> str:
        if self.ok:
            return (
                f"consistent: {self.words_checked} words checked, "
                f"{self.committed_txs} committed txs accounted for"
            )
        head = self.failures[0] if self.failures else "unknown mismatch"
        return f"INCONSISTENT ({len(self.failures)}+ mismatches): {head}"


class CrashOracle:
    """Shadows committed durable state; verifies it after crash + recovery."""

    def __init__(self, system: "System") -> None:
        self._system = system
        self._controller = system.controller
        self._baseline: Dict[int, int] = {}
        #: word address -> last architecturally committed value.
        self._committed: Dict[int, int] = {}
        #: every word that ever appeared in an NVM redo record.
        self._touched: Set[int] = set()
        #: words written non-transactionally after arming (unverifiable).
        self._excluded: Set[int] = set()
        self._commit_order: List[int] = []
        self._armed = False

    # -- lifecycle ---------------------------------------------------------

    def arm(self) -> None:
        """Snapshot the baseline and start shadowing.  Call after workload
        setup (RawContext pre-population) and before the measured run."""
        if self._armed:
            return
        self._armed = True
        self._baseline = dict(self._controller.nvm.clone_contents())
        self._controller.nvm_log.add_observer(self._observe_log)
        self._controller.on_nvm_commit = self._on_commit
        self._controller.on_nontx_nvm_store = self._on_nontx_store

    @property
    def committed_tx_count(self) -> int:
        return len(self._commit_order)

    def expected_value(self, word_addr: int) -> int:
        """What the reference model says this NVM word must hold."""
        addr = word_of(word_addr)
        if addr in self._committed:
            return self._committed[addr]
        return self._baseline.get(addr, 0)

    # -- observation hooks -------------------------------------------------

    def _observe_log(self, record: LogRecord) -> None:
        if record.kind is RecordKind.REDO:
            for word_addr, _value in record.words:
                self._touched.add(word_of(word_addr))

    def _on_commit(self, tx_id: int, lines: Dict[int, Dict[int, int]]) -> None:
        self._commit_order.append(tx_id)
        for words in lines.values():
            for word_addr, value in words.items():
                addr = word_of(word_addr)
                self._committed[addr] = value
                self._touched.add(addr)

    def _on_nontx_store(self, addr: int) -> None:
        self._excluded.add(word_of(addr))

    # -- verification ------------------------------------------------------

    def verify(self) -> OracleVerdict:
        """Check post-recovery NVM against the reference model.

        Exactly the committed prefix must be visible: every committed word
        holds its last committed value (no lost or torn commits), and every
        touched-but-uncommitted word still holds its baseline value (no
        leakage of uncommitted data).
        """
        load = self._controller.load_word
        failures: List[str] = []
        checked = 0
        for addr, expected in sorted(self._committed.items()):
            if addr in self._excluded:
                continue
            checked += 1
            got = load(addr)
            if got != expected and len(failures) < _MAX_FAILURES:
                failures.append(
                    f"lost/torn commit at {addr:#x}: "
                    f"expected {expected}, found {got}"
                )
        for addr in sorted(self._touched - set(self._committed)):
            if addr in self._excluded:
                continue
            checked += 1
            expected = self._baseline.get(addr, 0)
            got = load(addr)
            if got != expected and len(failures) < _MAX_FAILURES:
                failures.append(
                    f"uncommitted leakage at {addr:#x}: "
                    f"expected baseline {expected}, found {got}"
                )
        return OracleVerdict(
            ok=not failures,
            failures=failures,
            committed_txs=len(self._commit_order),
            words_checked=checked,
            words_excluded=len(self._excluded),
        )
