"""The fleet supervisor: spawn N sharded workers, keep them alive.

``python -m repro serve daemon --workers N`` launches one worker
subprocess per shard (``0/N`` … ``N-1/N``) against a spool and babysits
them.  Two modes:

* **service** (default) — run until killed; a worker that dies is
  restarted (bounded by ``restart_limit`` per slot, so a crash-looping
  point cannot melt the host).  Restart is safe by construction: the
  replacement worker resumes from the cache like any other.
* **drain** (``--drain``) — workers exit when their shard is settled;
  the daemon waits for all of them and exits non-zero if any did.  This
  is the batch shape used by CI: submit, drain, compare.

The daemon holds no state the workers need — killing it orphans nothing,
and a second daemon on another host against the same (shared) spool just
adds more shards' worth of throughput.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from .clock import sleep
from .jobstore import ServeError
from .queue import DEFAULT_LEASE_TTL_S
from .worker import DEFAULT_POLL_S


def worker_command(
    spool: Union[str, Path],
    shard_index: int,
    shard_count: int,
    drain: bool = False,
    poll_s: float = DEFAULT_POLL_S,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
) -> List[str]:
    """The argv for one fleet worker (also used by tests and examples)."""
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "worker",
        "--spool",
        str(spool),
        "--shard",
        f"{shard_index}/{shard_count}",
        "--poll",
        str(poll_s),
        "--lease-ttl",
        str(lease_ttl_s),
    ]
    if drain:
        command.append("--drain")
    return command


@dataclass
class _Slot:
    shard_index: int
    process: subprocess.Popen
    restarts: int = 0


class Daemon:
    """Supervise a local worker fleet over one spool."""

    def __init__(
        self,
        spool: Union[str, Path],
        workers: int = 2,
        drain: bool = False,
        poll_s: float = DEFAULT_POLL_S,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        restart_limit: int = 3,
    ) -> None:
        if workers < 1:
            raise ServeError("the daemon needs at least one worker")
        self.spool = Path(spool)
        self.workers = workers
        self.drain = drain
        self.poll_s = poll_s
        self.lease_ttl_s = lease_ttl_s
        self.restart_limit = restart_limit

    def _spawn(self, shard_index: int) -> subprocess.Popen:
        return subprocess.Popen(
            worker_command(
                self.spool,
                shard_index,
                self.workers,
                drain=self.drain,
                poll_s=self.poll_s,
                lease_ttl_s=self.lease_ttl_s,
            )
        )

    def run(self) -> int:
        """Supervise until drained (drain mode) or killed (service mode).

        Returns a process exit code: 0 only when every drained worker
        exited cleanly.
        """
        self.spool.mkdir(parents=True, exist_ok=True)
        slots = [_Slot(i, self._spawn(i)) for i in range(self.workers)]
        print(
            f"[daemon] {self.workers} worker(s) over spool {self.spool}"
            + (" (drain mode)" if self.drain else "")
        )
        try:
            if self.drain:
                failures = 0
                for slot in slots:
                    code = slot.process.wait()
                    if code != 0:
                        failures += 1
                        print(
                            f"[daemon] worker {slot.shard_index}/"
                            f"{self.workers} exited with {code}"
                        )
                print("[daemon] drained")
                return 1 if failures else 0
            while True:
                for slot in slots:
                    code = slot.process.poll()
                    if code is None:
                        continue
                    if slot.restarts >= self.restart_limit:
                        raise ServeError(
                            f"worker {slot.shard_index}/{self.workers} died "
                            f"{slot.restarts + 1} times (last exit {code}); "
                            "giving up"
                        )
                    slot.restarts += 1
                    print(
                        f"[daemon] worker {slot.shard_index}/{self.workers} "
                        f"exited with {code}; restarting "
                        f"({slot.restarts}/{self.restart_limit})"
                    )
                    slot.process = self._spawn(slot.shard_index)
                sleep(self.poll_s)
        finally:
            for slot in slots:
                if slot.process.poll() is None:
                    slot.process.terminate()
            for slot in slots:
                if slot.process.poll() is None:
                    try:
                        slot.process.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        slot.process.kill()
