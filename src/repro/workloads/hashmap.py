"""A transactional chained hash map (PMDK ``hashmap_tx`` equivalent)."""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, TYPE_CHECKING

from ..mem.address import MemoryKind
from ..runtime.txapi import MemoryContext
from .base import PayloadPool, Workload, WorkloadParams, write_payload

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.heap import TxHeap

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

# Header layout (words): bucket-array pointer, bucket count, element count.
_H_BUCKETS = 0
_H_NBUCKETS = 1
_H_SIZE = 2
# Node layout (words): key, value, next pointer.
_N_KEY = 0
_N_VALUE = 1
_N_NEXT = 2
_NODE_WORDS = 3


class TxHashMap:
    """A fixed-bucket chained hash table over the transactional heap."""

    def __init__(self, heap: "TxHeap", base: int, kind: MemoryKind) -> None:
        self.heap = heap
        self.base = base
        self.kind = kind

    @classmethod
    def create(
        cls, heap: "TxHeap", ctx: MemoryContext, kind: MemoryKind, nbuckets: int = 64
    ) -> "TxHashMap":
        base = heap.alloc_words(4, kind)
        buckets = heap.alloc_words(nbuckets, kind)
        ctx.write_word(heap.field(base, _H_BUCKETS), buckets)
        ctx.write_word(heap.field(base, _H_NBUCKETS), nbuckets)
        ctx.write_word(heap.field(base, _H_SIZE), 0)
        for i in range(nbuckets):
            ctx.write_word(heap.field(buckets, i), 0)
        return cls(heap, base, kind)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _hash(key: int) -> int:
        return ((key * _GOLDEN) & _MASK64) >> 32

    def _bucket_slot(self, ctx: MemoryContext, key: int) -> int:
        buckets = ctx.read_word(self.heap.field(self.base, _H_BUCKETS))
        nbuckets = ctx.read_word(self.heap.field(self.base, _H_NBUCKETS))
        return self.heap.field(buckets, self._hash(key) % nbuckets)

    # -- operations ------------------------------------------------------------

    def insert(self, ctx: MemoryContext, key: int, value: int) -> bool:
        """Insert or update; returns True if the key was new."""
        slot = self._bucket_slot(ctx, key)
        node = ctx.read_word(slot)
        while node != 0:
            if ctx.read_word(self.heap.field(node, _N_KEY)) == key:
                ctx.write_word(self.heap.field(node, _N_VALUE), value)
                return False
            node = ctx.read_word(self.heap.field(node, _N_NEXT))
        fresh = self.heap.alloc_words(_NODE_WORDS, self.kind)
        ctx.write_word(self.heap.field(fresh, _N_KEY), key)
        ctx.write_word(self.heap.field(fresh, _N_VALUE), value)
        ctx.write_word(self.heap.field(fresh, _N_NEXT), ctx.read_word(slot))
        ctx.write_word(slot, fresh)
        return True

    def get(self, ctx: MemoryContext, key: int) -> Optional[int]:
        slot = self._bucket_slot(ctx, key)
        node = ctx.read_word(slot)
        while node != 0:
            if ctx.read_word(self.heap.field(node, _N_KEY)) == key:
                return ctx.read_word(self.heap.field(node, _N_VALUE))
            node = ctx.read_word(self.heap.field(node, _N_NEXT))
        return None

    def delete(self, ctx: MemoryContext, key: int) -> bool:
        slot = self._bucket_slot(ctx, key)
        node = ctx.read_word(slot)
        prev_slot = slot
        while node != 0:
            next_node = ctx.read_word(self.heap.field(node, _N_NEXT))
            if ctx.read_word(self.heap.field(node, _N_KEY)) == key:
                ctx.write_word(prev_slot, next_node)
                self.heap.free_words(node, _NODE_WORDS, self.kind)
                return True
            prev_slot = self.heap.field(node, _N_NEXT)
            node = next_node
        return False

    def size(self, ctx: MemoryContext) -> int:
        """Element count, by walking (a transactional global counter would
        be a write hotspot serialising every insert)."""
        return len(self.keys(ctx))

    def keys(self, ctx: MemoryContext) -> List[int]:
        """All keys (test/verification helper; O(buckets + elements))."""
        buckets = ctx.read_word(self.heap.field(self.base, _H_BUCKETS))
        nbuckets = ctx.read_word(self.heap.field(self.base, _H_NBUCKETS))
        out: List[int] = []
        for i in range(nbuckets):
            node = ctx.read_word(self.heap.field(buckets, i))
            while node != 0:
                out.append(ctx.read_word(self.heap.field(node, _N_KEY)))
                node = ctx.read_word(self.heap.field(node, _N_NEXT))
        return out

    def check_integrity(self, ctx: MemoryContext) -> bool:
        """Size counter matches reachable nodes; chains are acyclic."""
        seen = set()
        keys = []
        buckets = ctx.read_word(self.heap.field(self.base, _H_BUCKETS))
        nbuckets = ctx.read_word(self.heap.field(self.base, _H_NBUCKETS))
        for i in range(nbuckets):
            node = ctx.read_word(self.heap.field(buckets, i))
            while node != 0:
                if node in seen:
                    return False  # cycle
                seen.add(node)
                keys.append(ctx.read_word(self.heap.field(node, _N_KEY)))
                node = ctx.read_word(self.heap.field(node, _N_NEXT))
        return len(keys) == len(set(keys))


class HashMapWorkload(Workload):
    """Insert/update entries in a hash table (Table IV, HashMap [25])."""

    name = "hashmap"

    def __init__(self, system, process, params: WorkloadParams) -> None:
        super().__init__(system, process, params)
        self.map: Optional[TxHashMap] = None
        self.pool: Optional[PayloadPool] = None

    def setup(self) -> None:
        self.map = TxHashMap.create(
            self.system.heap,
            self.raw,
            self.params.kind,
            nbuckets=max(64, self.params.keys // 4),
        )
        self.pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, self.params.kind
        )
        for key in range(self.params.initial_fill):
            self.map.insert(self.raw, key, self.pool.block_for(key))

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    def _make_body(self, thread_index: int) -> Callable:
        def body(api) -> Generator[None, None, None]:
            keys = self.key_stream(thread_index)
            for tx_index in range(self.params.txs_per_thread):
                batch = [next(keys) for _ in range(self.params.ops_per_tx)]

                def work(tx, batch=batch, tag=tx_index + 1):
                    for key in batch:
                        payload = self.pool.block_for(key)
                        yield from write_payload(
                            tx, payload, self.value_bytes, tag
                        )
                        self.map.insert(tx, key, payload)
                        yield

                yield from api.run_transaction(work, ops=len(batch))

        return body

    def verify(self) -> bool:
        return self.map.check_integrity(self.raw)
