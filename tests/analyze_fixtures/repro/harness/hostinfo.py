"""A non-funnel harness helper that reads the clock (CLK008 fixture prop)."""

import time


def host_seconds():
    return time.time()
