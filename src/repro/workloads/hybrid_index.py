"""The Hybrid-Index key-value store (HiKV style, Table IV).

"The Hybrid-Index key-value store maintains two separate indexes, one for
DRAM (e.g., B-Tree) and another for NVM (e.g., HashMap) while data are only
stored in NVM."  A put updates the NVM record payload, the NVM hash index,
and the DRAM B-tree index in one transaction — the canonical hybrid
transaction whose DRAM and NVM sides must stay mutually consistent (the
paper's Figure 1).  Scans use the DRAM B-tree; gets use the NVM hash table.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..mem.address import MemoryKind
from .base import PayloadPool, Workload, WorkloadParams, write_payload
from .btree import TxBTree
from .hashmap import TxHashMap


class HybridIndexWorkload(Workload):
    """Insert/update in a KV-store with DRAM + NVM indexes [63]."""

    name = "hybrid_index"

    def __init__(self, system, process, params: WorkloadParams) -> None:
        super().__init__(system, process, params)
        self.btree_index: Optional[TxBTree] = None  # DRAM: accelerates scans
        self.hash_index: Optional[TxHashMap] = None  # NVM: put/get/update
        self.pool: Optional[PayloadPool] = None  # NVM record payloads
        #: Fraction of transactions that are B-tree range scans.
        self.scan_ratio = 0.1

    def setup(self) -> None:
        heap = self.system.heap
        self.btree_index = TxBTree.create(heap, self.raw, MemoryKind.DRAM)
        self.hash_index = TxHashMap.create(
            heap,
            self.raw,
            MemoryKind.NVM,
            nbuckets=max(64, self.params.keys // 4),
        )
        self.pool = PayloadPool(
            self.system, self.params.keys, self.value_bytes, MemoryKind.NVM
        )
        for key in range(self.params.initial_fill):
            record = self.pool.block_for(key)
            self.hash_index.insert(self.raw, key, record)
            self.btree_index.insert(self.raw, key, record)

    def thread_bodies(self) -> List[Callable]:
        return [self._make_body(i) for i in range(self.params.threads)]

    def _make_body(self, thread_index: int) -> Callable:
        rng = self.system.rng.fork(
            self.process.pid * 977 + thread_index
        ).stream("hybrid_ops")

        def body(api) -> Generator[None, None, None]:
            keys = self.key_stream(thread_index)
            for tx_index in range(self.params.txs_per_thread):
                if rng.random() < self.scan_ratio:
                    lo = rng.randrange(max(1, self.params.initial_fill))

                    def scan_work(tx, lo=lo):
                        # Scans go through the DRAM B-tree (the whole point
                        # of keeping it); touch each record header too.
                        for _, record in self.btree_index.scan(tx, lo, lo + 16):
                            tx.read_word(record)
                            yield

                    yield from api.run_transaction(scan_work, ops=1)
                    continue
                batch = [next(keys) for _ in range(self.params.ops_per_tx)]

                def put_work(tx, batch=batch, tag=tx_index + 1):
                    for key in batch:
                        record = self.pool.block_for(key)
                        yield from write_payload(
                            tx, record, self.value_bytes, tag
                        )
                        self.hash_index.insert(tx, key, record)
                        self.btree_index.insert(tx, key, record)
                        yield

                yield from api.run_transaction(put_work, ops=len(batch))

        return body

    def verify(self) -> bool:
        """Both indexes are intact and agree key-for-key."""
        if not self.hash_index.check_integrity(self.raw):
            return False
        if not self.btree_index.check_integrity(self.raw):
            return False
        hash_keys = sorted(self.hash_index.keys(self.raw))
        btree_keys = self.btree_index.keys(self.raw)
        if hash_keys != btree_keys:
            return False
        for key in hash_keys:
            if self.hash_index.get(self.raw, key) != self.btree_index.get(
                self.raw, key
            ):
                return False
        return True
