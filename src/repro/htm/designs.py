"""The four evaluated HTM designs (Section V's comparison points)."""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..cache.hierarchy import CacheHierarchy
from ..errors import AbortReason, ConfigError
from ..mem.controller import MemoryController
from ..params import HTMConfig, HTMDesign, MachineConfig
from ..sim.stats import StatsRegistry
from ..signatures.addresssig import SignaturePair
from ..signatures.bloom import BloomFilter
from .base import HTMSystem, TxHandle


class LLCBoundedHTM(HTMSystem):
    """The DHTM-like baseline: durable, but bounded by the on-chip caches.

    Conflict detection is coherence-only, so the moment a transactional line
    is evicted from the LLC correctness can no longer be guaranteed and the
    transaction takes a capacity abort.  Per Section V, "a transaction does
    not attempt to retry if the transaction has overflowed and executes the
    slow-path right away" — the retry loop inspects the abort reason.
    """

    def _isolation_enabled(self) -> bool:
        return True  # moot: no signatures exist to isolate

    def _offchip_trigger(self, llc_miss: bool) -> bool:
        return False

    def _on_llc_overflow(
        self, tx: TxHandle, line_addr: int, wrote: bool, read: bool
    ) -> None:
        self._mark_overflowed(tx)
        self.stats.incr("tx.capacity_overflow_events")
        self._abort_tx_id(tx.tx_id, AbortReason.CAPACITY)

    def _offchip_conflicts(
        self,
        domain_id: int,
        line_addr: int,
        is_write: bool,
        exclude_tx: Optional[int],
        requester_overflowed: Optional[bool] = None,
    ) -> List[Tuple[int, bool]]:
        return []


class SignatureOnlyHTM(HTMSystem):
    """Bulk / LogTM-SE style: signatures checked on all coherence traffic.

    Every transactional access inserts its line into the transaction's own
    read/write signature and is checked against *every* other active
    signature, regardless of cache residency.  No directory fields are used.
    With durable transactions' few-hundred-KB footprints the filters
    saturate, which is precisely the >99 % abort-rate pathology the paper
    measures for this design.
    """

    USES_DIRECTORY = False

    def _isolation_enabled(self) -> bool:
        return False  # the naive design has one flat conflict domain

    def _register_tracking(self, tx: TxHandle) -> None:
        # Signature-only filters hold the *entire* footprint, which the
        # machine scale shrinks — so their widths shrink with it to keep
        # occupancy (and therefore the false-positive rate) faithful.  UHTM
        # filters hold only LLC-overflowed lines, whose count the compressed
        # caches already keep at paper magnitude, so those stay nominal.
        tx.signature = SignaturePair(
            self.config.signature, self.machine.scale, kit=self.kernel_kit
        )
        self.domains.register(tx.tx_id, tx.domain_id, tx.signature)

    def _offchip_trigger(self, llc_miss: bool) -> bool:
        return True  # all traffic is checked

    def _on_access_recorded(self, tx: TxHandle, line_addr: int, is_write: bool) -> None:
        assert tx.signature is not None
        if is_write:
            tx.signature.add_write(line_addr)
        else:
            tx.signature.add_read(line_addr)

    def _on_llc_overflow(
        self, tx: TxHandle, line_addr: int, wrote: bool, read: bool
    ) -> None:
        # Tracking already lives entirely in the signatures; only the
        # speculative data of a written line must move off-chip.
        self._mark_overflowed(tx)
        if wrote:
            self._spill_written_line(tx, line_addr)
        if self.tracer is not None and tx.signature is not None:
            self.tracer.emit(
                "sig.saturation",
                ts_ns=tx.thread.clock_ns,
                tx_id=tx.tx_id,
                thread_id=tx.thread.thread_id,
                read=tx.signature.read_filter.saturation,
                write=tx.signature.write_filter.saturation,
            )

    def _offchip_conflicts(
        self,
        domain_id: int,
        line_addr: int,
        is_write: bool,
        exclude_tx: Optional[int],
        requester_overflowed: Optional[bool] = None,
    ) -> List[Tuple[int, bool]]:
        return _signature_hits(
            self, domain_id, line_addr, is_write, exclude_tx,
            requester_overflowed,
        )


class UHTM(HTMSystem):
    """The paper's design: staged detection plus hybrid logging.

    On-chip conflicts come from the directory's Tx fields (precise).  Lines
    evicted from the LLC migrate into per-transaction read/write signatures,
    and *only LLC-missing* requests are checked against them — the staged
    filter that cuts the false-positive abort rate from >99 % to 26 %.
    With ``config.isolation`` the check is further confined to the
    requester's conflict domain (→ 9 %).
    """

    def _register_tracking(self, tx: TxHandle) -> None:
        tx.signature = SignaturePair(
            self.config.signature, kit=self.kernel_kit
        )
        self.domains.register(tx.tx_id, tx.domain_id, tx.signature)

    def _offchip_trigger(self, llc_miss: bool) -> bool:
        return llc_miss

    def _on_llc_overflow(
        self, tx: TxHandle, line_addr: int, wrote: bool, read: bool
    ) -> None:
        assert tx.signature is not None
        self._mark_overflowed(tx)
        if read:
            tx.signature.add_read(line_addr)
        if wrote:
            tx.signature.add_write(line_addr)
            self._spill_written_line(tx, line_addr)
        if self.tracer is not None:
            self.tracer.emit(
                "sig.saturation",
                ts_ns=tx.thread.clock_ns,
                tx_id=tx.tx_id,
                thread_id=tx.thread.thread_id,
                read=tx.signature.read_filter.saturation,
                write=tx.signature.write_filter.saturation,
            )

    def _offchip_conflicts(
        self,
        domain_id: int,
        line_addr: int,
        is_write: bool,
        exclude_tx: Optional[int],
        requester_overflowed: Optional[bool] = None,
    ) -> List[Tuple[int, bool]]:
        return _signature_hits(
            self, domain_id, line_addr, is_write, exclude_tx,
            requester_overflowed,
        )


class IdealHTM(HTMSystem):
    """Perfect unbounded conflict detection: exact sets, no false positives.

    Version management is identical to UHTM's (hybrid logging); only the
    off-chip detection is oracular, which is exactly the paper's "Ideal
    Unbounded HTM" comparison point.
    """

    def _isolation_enabled(self) -> bool:
        return True

    def _register_tracking(self, tx: TxHandle) -> None:
        tx.signature = SignaturePair(
            self.config.signature, kit=self.kernel_kit
        )
        self.domains.register(tx.tx_id, tx.domain_id, tx.signature)

    def _offchip_trigger(self, llc_miss: bool) -> bool:
        return llc_miss

    def _on_llc_overflow(
        self, tx: TxHandle, line_addr: int, wrote: bool, read: bool
    ) -> None:
        assert tx.signature is not None
        self._mark_overflowed(tx)
        if read:
            tx.signature.exact_read.add(line_addr)
        if wrote:
            tx.signature.exact_write.add(line_addr)
            self._spill_written_line(tx, line_addr)

    def _offchip_conflicts(
        self,
        domain_id: int,
        line_addr: int,
        is_write: bool,
        exclude_tx: Optional[int],
        requester_overflowed: Optional[bool] = None,
    ) -> List[Tuple[int, bool]]:
        hits: List[Tuple[int, bool]] = []
        for tx_id, signature in self.domains.members(domain_id).items():
            if tx_id == exclude_tx or (
                not signature.exact_read and not signature.exact_write
            ):
                continue
            self.stats.incr("sig.checks")
            if signature.truly_conflicts_with_access(line_addr, is_write):
                hits.append((tx_id, True))
                self.stats.incr("sig.hits.true")
        return hits


def _signature_hits(
    system: HTMSystem,
    domain_id: int,
    line_addr: int,
    is_write: bool,
    exclude_tx: Optional[int],
    requester_overflowed: Optional[bool] = None,
) -> List[Tuple[int, bool]]:
    """Probe the relevant signatures, labelling each hit true or false.

    The true/false label comes from the exact shadow sets and is used for
    the Figure 7 abort decomposition; the *hardware* only sees the Bloom
    filter answer.

    ``requester_overflowed`` enables an early exit for transactional
    requesters: under Table II the requester survives a hit only when it is
    overflowed and the victim is not, so the first hit that dooms it makes
    further probing pointless — the outcome is already decided.

    The probe hashes the line once per hash *family*, not once per filter:
    all of a run's signatures share their families (see
    ``shared_multiplicative``), so the write-key and read-key are computed
    for the first populated signature and every subsequent filter test is a
    single AND-compare against the cached key.  A family-identity check
    guards the cache, so heterogeneous signatures still probe correctly.
    """
    hits: List[Tuple[int, bool]] = []
    checks = 0
    tracer = system.tracer
    wfam = rfam = None
    wkey = rkey = None
    flat = False
    for tx_id, signature in system.domains.members(domain_id).items():
        if tx_id == exclude_tx or (
            not signature.exact_read and not signature.exact_write
        ):
            # An unpopulated filter is all-zero and can never hit; the
            # hardware comparators short out, and so do we (hot path).
            continue
        checks += 1
        write_filter = signature.write_filter
        # Direct slot access: the `family` property's descriptor call is
        # measurable at this call frequency.
        family = write_filter._family
        if family is not wfam:
            wfam = family
            flat = type(write_filter) is BloomFilter
            wkey = (
                family.or_mask(line_addr)
                if flat
                else write_filter.probe_key(line_addr)
            )
        if flat:
            # Flat filters are single big-ints; test them inline rather
            # than paying a method call per member (the dominant case).
            conflicts = write_filter._array & wkey == wkey
            if not conflicts and is_write:
                read_filter = signature.read_filter
                family = read_filter._family
                if family is not rfam:
                    rfam = family
                    rkey = family.or_mask(line_addr)
                conflicts = read_filter._array & rkey == rkey
        elif write_filter.contains_key(wkey):
            conflicts = True
        elif is_write:
            read_filter = signature.read_filter
            family = read_filter._family
            if family is not rfam:
                rfam = family
                rkey = read_filter.probe_key(line_addr)
            conflicts = read_filter.contains_key(rkey)
        else:
            conflicts = False
        if conflicts:
            truly = signature.truly_conflicts_with_access(line_addr, is_write)
            hits.append((tx_id, truly))
            system.stats.incr("sig.hits.true" if truly else "sig.hits.false")
            if tracer is not None:
                tracer.emit(
                    "sig.hit",
                    tx_id=exclude_tx,
                    victim=tx_id,
                    line_addr=line_addr,
                    is_write=is_write,
                    truly=truly,
                )
            if requester_overflowed is not None and not (
                requester_overflowed and not system.tss.is_overflowed(tx_id)
            ):
                break  # the requester is already doomed
    if checks:
        system.stats.incr("sig.checks", checks)
        if tracer is not None:
            tracer.emit(
                "sig.check",
                tx_id=exclude_tx,
                line_addr=line_addr,
                is_write=is_write,
                checks=checks,
                hits=len(hits),
            )
    return hits


def build_htm(
    machine: MachineConfig,
    config: HTMConfig,
    controller: MemoryController,
    hierarchy: CacheHierarchy,
    stats: StatsRegistry,
    kit=None,
) -> HTMSystem:
    """Instantiate the design named by ``config.design``.

    ``kit`` is a duck-typed engine kit (see :mod:`repro.kernels`) passed
    through to the design so per-transaction signatures use the selected
    filter classes.
    """
    classes = {
        HTMDesign.LLC_BOUNDED: LLCBoundedHTM,
        HTMDesign.SIGNATURE_ONLY: SignatureOnlyHTM,
        HTMDesign.UHTM: UHTM,
        HTMDesign.IDEAL: IdealHTM,
    }
    cls = classes.get(config.design)
    if cls is None:
        raise ConfigError(f"unknown HTM design {config.design!r}")
    return cls(machine, config, controller, hierarchy, stats, kit=kit)
