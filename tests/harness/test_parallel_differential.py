"""Differential tier: parallel execution must be bit-identical to serial.

The harness's headline contract (docs/HARNESS.md): because every simulation
is a pure function of its spec — all randomness flows through seeded
``RngStreams`` — fanning a grid over N worker processes changes wall time
and nothing else.  These tests run the same small grid serially, with 2
workers, and with 4 workers, across two seeds, and require *exact* equality:
identical metric dicts per point and byte-identical exported JSON.
"""

from __future__ import annotations

import pytest

from repro.harness.config import ExperimentSpec, consolidated
from repro.harness.export import to_json
from repro.harness.metrics import run_result_to_dict
from repro.harness.parallel import run_grid, run_grid_detailed
from repro.harness.sweep import (
    SweepAxis,
    build_grid,
    run_sweep,
    with_design,
    with_seed,
)
from repro.params import HTMConfig
from repro.workloads import WorkloadParams

SEEDS = (2020, 7)
JOB_COUNTS = (1, 2, 4)


def base_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="differential",
        htm=HTMConfig(),
        benchmarks=consolidated(
            "hashmap", 2,
            WorkloadParams(threads=2, txs_per_thread=2,
                           value_bytes=16 << 10, keys=64, initial_fill=16),
        ),
        scale=1 / 16,
        cores=4,
    )


def small_axes():
    return [
        SweepAxis("design", ["llc_bounded", "uhtm"], with_design),
        SweepAxis("seed", list(SEEDS), with_seed),
    ]


class TestBitIdenticalGrid:
    def test_metric_dicts_identical_across_job_counts(self):
        points = build_grid(base_spec(), small_axes())
        per_jobs = {
            jobs: [run_result_to_dict(r) for r in run_grid(points, jobs=jobs)]
            for jobs in JOB_COUNTS
        }
        assert per_jobs[1] == per_jobs[2] == per_jobs[4]
        # The grid covered both seeds (not a degenerate comparison).
        seeds = {point.key[1] for point in points}
        assert seeds == set(SEEDS)

    def test_exported_json_byte_identical_across_job_counts(self):
        exports = {
            jobs: to_json(
                [
                    run_sweep(
                        base_spec(),
                        small_axes(),
                        metrics={
                            "tput": lambda run: run.throughput,
                            "aborts": lambda run: run.aborts,
                            "elapsed_ns": lambda run: run.elapsed_ns,
                        },
                        jobs=jobs,
                    )
                ]
            )
            for jobs in JOB_COUNTS
        }
        assert exports[1] == exports[2] == exports[4]
        assert exports[1].encode("utf-8") == exports[4].encode("utf-8")

    def test_verify_sample_accepts_honest_pool(self):
        points = build_grid(base_spec(), small_axes())
        outcome = run_grid_detailed(points, jobs=2, verify_sample=True)
        assert outcome.simulated == len(points)

    def test_point_order_is_submission_order(self):
        """Results line up with points regardless of completion order."""
        points = build_grid(base_spec(), small_axes())
        results = run_grid(points, jobs=4)
        for point, result in zip(points, results):
            design = point.key[0]
            expected_label = "LLC-Bounded" if design == "llc_bounded" else "1k_opt"
            assert result.label == expected_label


class TestWarmCacheRerun:
    def test_second_run_simulates_nothing_and_matches(self, tmp_path):
        from repro.harness.cache import ResultCache

        points = build_grid(base_spec(), small_axes())
        cold_cache = ResultCache(tmp_path / "cache")
        cold = run_grid_detailed(points, jobs=2, cache=cold_cache)
        assert cold.simulated == len(points)
        assert cold_cache.stats.simulations == len(points)

        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_grid_detailed(points, jobs=2, cache=warm_cache)
        assert warm.simulated == 0
        assert warm.cache_hits == len(points)
        assert warm_cache.stats.simulations == 0
        assert warm_cache.stats.misses == 0
        assert [run_result_to_dict(r) for r in warm.results] == [
            run_result_to_dict(r) for r in cold.results
        ]

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_cache_is_transparent_to_results(self, tmp_path, jobs):
        points = build_grid(base_spec(), small_axes())
        from repro.harness.cache import ResultCache

        uncached = run_grid(points, jobs=jobs)
        cached = run_grid(
            points, jobs=jobs, cache=ResultCache(tmp_path / "c")
        )
        assert [run_result_to_dict(r) for r in uncached] == [
            run_result_to_dict(r) for r in cached
        ]
