"""Shared fixtures for the job-service tests."""

from __future__ import annotations

import pytest


@pytest.fixture
def spool(tmp_path):
    return tmp_path / "spool"
