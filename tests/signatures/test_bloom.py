"""Tests for the Bloom filter underlying address signatures."""

from __future__ import annotations

import pytest

from repro.signatures.bloom import BankedBloomFilter, BloomFilter
from repro.signatures.hashing import MultiplicativeHashFamily


def make_filter(bits=256, k=4, seed=1):
    return BloomFilter(bits, k, MultiplicativeHashFamily(k, bits, seed=seed))


class TestMembership:
    def test_no_false_negatives(self):
        """The property correctness depends on: inserted ⇒ reported."""
        bloom = make_filter()
        values = [0x1000 + i * 64 for i in range(200)]
        bloom.insert_all(values)
        assert all(bloom.maybe_contains(v) for v in values)

    def test_empty_filter_contains_nothing(self):
        bloom = make_filter()
        assert not bloom.maybe_contains(0x40)
        assert bloom.is_empty()

    def test_clear(self):
        bloom = make_filter()
        bloom.insert(0x40)
        bloom.clear()
        assert bloom.is_empty()
        assert bloom.inserted == 0
        assert not bloom.maybe_contains(0x40)


class TestSaturation:
    def test_popcount_grows_with_inserts(self):
        bloom = make_filter(bits=512)
        previous = 0
        for i in range(10):
            bloom.insert(0x9000 + i * 64)
            assert bloom.popcount >= previous
            previous = bloom.popcount

    def test_saturation_bounded(self):
        bloom = make_filter(bits=64)
        for i in range(1000):
            bloom.insert(i * 64)
        assert bloom.saturation == 1.0
        # A fully saturated filter reports everything: all false positives.
        assert bloom.maybe_contains(0xDEADBEEF00)

    def test_false_positive_rate_tracks_analytical_estimate(self):
        """Measured FP rate should be near (popcount/m)^k."""
        bloom = make_filter(bits=1024, k=4)
        inserted = [0x4000_0000 + i * 64 for i in range(150)]
        bloom.insert_all(inserted)
        probes = [0x8000_0000 + i * 64 for i in range(4000)]
        fp = sum(bloom.maybe_contains(p) for p in probes) / len(probes)
        estimate = bloom.expected_false_positive_rate()
        assert abs(fp - estimate) < 0.1

    def test_bigger_filter_fewer_false_positives(self):
        small = make_filter(bits=128)
        large = make_filter(bits=4096)
        inserted = [0x4000_0000 + i * 64 for i in range(100)]
        small.insert_all(inserted)
        large.insert_all(inserted)
        probes = [0x8000_0000 + i * 64 for i in range(2000)]
        fp_small = sum(small.maybe_contains(p) for p in probes)
        fp_large = sum(large.maybe_contains(p) for p in probes)
        assert fp_large < fp_small


class TestFalsePositiveEstimates:
    """Regression: ``expected_false_positive_rate`` used to return the
    occupancy-based rate its docstring disclaimed; the pair is now split."""

    def test_expected_is_analytic_formula(self):
        import math

        bloom = make_filter(bits=1024, k=4)
        bloom.insert_all(0x4000_0000 + i * 64 for i in range(150))
        k, n, m = 4, 150, 1024
        analytic = (1.0 - math.exp(-k * n / m)) ** k
        assert bloom.expected_false_positive_rate() == pytest.approx(analytic)

    def test_observed_is_occupancy_based(self):
        bloom = make_filter(bits=1024, k=4)
        bloom.insert_all(0x4000_0000 + i * 64 for i in range(150))
        assert bloom.observed_false_positive_rate() == pytest.approx(
            bloom.saturation**4
        )

    def test_expected_and_observed_agree_on_known_fill(self):
        """With a decent hash family the two views of the same filter must
        land close together — and both near the measured probe rate."""
        bloom = make_filter(bits=1024, k=4)
        bloom.insert_all(0x4000_0000 + i * 64 for i in range(150))
        expected = bloom.expected_false_positive_rate()
        observed = bloom.observed_false_positive_rate()
        assert abs(expected - observed) < 0.05
        probes = [0x8000_0000 + i * 64 for i in range(4000)]
        fp = sum(bloom.maybe_contains(p) for p in probes) / len(probes)
        assert abs(fp - expected) < 0.1
        assert abs(fp - observed) < 0.1

    def test_banked_filter_has_same_pair(self):
        import math

        banked = BankedBloomFilter(
            1024, 4, MultiplicativeHashFamily(4, 256, seed=1)
        )
        banked.insert_all(0x4000_0000 + i * 64 for i in range(150))
        k, n, m = 4, 150, 1024
        analytic = (1.0 - math.exp(-k * n / m)) ** k
        assert banked.expected_false_positive_rate() == pytest.approx(analytic)
        observed = banked.observed_false_positive_rate()
        assert abs(observed - analytic) < 0.05
        probes = [0x8000_0000 + i * 64 for i in range(4000)]
        fp = sum(banked.maybe_contains(p) for p in probes) / len(probes)
        assert abs(fp - observed) < 0.1

    def test_empty_filters_report_zero(self):
        assert make_filter().observed_false_positive_rate() == 0.0
        banked = BankedBloomFilter(256, 4)
        assert banked.expected_false_positive_rate() == 0.0
        assert banked.observed_false_positive_rate() == 0.0


class TestValidation:
    def test_zero_bits_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 2)

    def test_family_bucket_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(64, 2, MultiplicativeHashFamily(2, 128))

    def test_estimate_of_empty_filter(self):
        assert make_filter().expected_false_positive_rate() == 0.0
