"""Traced experiment execution, serial or across the process pool.

Tracing must survive the pickle boundary of the grid runner without
perturbing it: a :class:`Tracer` holds a live ring of events and must not
cross into workers, and :class:`~repro.harness.config.ExperimentSpec` must
not grow a trace field (that would change every cache fingerprint).  So the
worker receives only ``(GridPoint, capacity)`` — both trivially picklable —
builds the tracer *inside* the worker process, attaches it via the
``instrument`` hook of :func:`~repro.harness.runner.run_experiment`, and
ships the captured events back as plain frozen dataclasses.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..harness.config import ExperimentSpec
from ..harness.metrics import RunResult
from ..harness.parallel import GridPoint
from ..harness.runner import run_experiment
from .events import TraceEvent
from .tracer import DEFAULT_CAPACITY, Tracer, attach_tracer


@dataclass
class TracedRun:
    """One experiment's metrics plus its captured event stream."""

    label: str
    result: RunResult
    events: List[TraceEvent]
    #: Events lost to ring overflow; forensics counts are exact only when 0.
    dropped: int


def _trace_point(item: Tuple[GridPoint, int]) -> TracedRun:
    """Worker entry: must stay a module-level function (it is pickled)."""
    point, capacity = item
    tracer = Tracer(capacity=capacity)
    result = run_experiment(
        point.spec,
        point.label,
        instrument=lambda system: attach_tracer(system, tracer),
    )
    return TracedRun(
        label=point.label or point.spec.htm.label,
        result=result,
        events=tracer.events(),
        dropped=tracer.dropped,
    )


def trace_grid(
    points: Sequence[GridPoint],
    jobs: int = 1,
    capacity: int = DEFAULT_CAPACITY,
) -> List[TracedRun]:
    """Trace every point, in order, across ``jobs`` worker processes.

    The same bit-identical contract as ``run_grid``: results (and events)
    come back in submission order for every ``jobs`` value, because each
    worker runs a fresh seeded system and tracing is a pure observer.
    """
    jobs = max(1, int(jobs))
    items = [(point, capacity) for point in points]
    if jobs > 1 and len(items) > 1:
        workers = min(jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_trace_point, items))
    return [_trace_point(item) for item in items]


def trace_experiment(
    spec: ExperimentSpec,
    label: Optional[str] = None,
    capacity: int = DEFAULT_CAPACITY,
) -> TracedRun:
    """Trace a single experiment in-process."""
    return _trace_point((GridPoint(spec=spec, label=label), capacity))
