"""The tree at HEAD must satisfy its own static analysis.

This is the acceptance gate: ``python -m repro lint src/repro`` exits 0, and
FSM004 has positively evaluated the shipped coherence table over the full
MesiState x CoherenceRequest product (totality, reachability from INVALID,
SWMR preservation) plus the directory's conflict dispatch.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analyze import run_analysis

REPRO_ROOT = Path(repro.__file__).parent


class TestSelfLint:
    def test_zero_findings_on_the_shipped_tree(self):
        report = run_analysis([REPRO_ROOT])
        assert report.findings == [], "\n".join(
            f"{f.location()}: {f.rule} {f.message}" for f in report.findings
        )
        assert report.files_checked > 50

    def test_fsm004_positively_evaluated_the_real_protocol(self):
        """Zero FSM004 findings must mean 'checked and complete', not
        'never evaluated' — guard against the detector missing the files."""
        from repro.analyze.core import Project
        from repro.analyze.fsm import FsmCompletenessChecker, _defined_names

        coherence = REPRO_ROOT / "cache" / "coherence.py"
        directory = REPRO_ROOT / "cache" / "directory.py"
        project, errors = Project.load([coherence, directory])
        assert errors == []
        by_name = {source.path.name: source for source in project.files}
        names = _defined_names(by_name["coherence.py"].tree)
        assert {
            "MesiState",
            "CoherenceRequest",
            "next_state_for_requester",
            "next_state_for_holder",
        } <= set(names)
        assert "Directory" in _defined_names(by_name["directory.py"].tree)
        checker = FsmCompletenessChecker()
        for source in project.files:
            assert list(checker.check(source, project)) == []


class TestNumpyConfinement:
    """numpy is an optional extra confined to ``repro.kernels``.

    Every other sim package must run without it, so any ``import numpy``
    outside the kernels package (or inside kernels but outside the ``_np``
    gate) breaks the no-numpy install path.  The check walks the real ASTs
    rather than grepping so aliased and ``from numpy import ...`` forms are
    caught too.
    """

    def _numpy_imports(self):
        import ast

        offenders = []
        for path in sorted(REPRO_ROOT.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                names = []
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom) and node.module:
                    names = [node.module]
                if any(
                    name == "numpy" or name.startswith("numpy.")
                    for name in names
                ):
                    offenders.append(path.relative_to(REPRO_ROOT))
        return offenders

    def test_numpy_imports_confined_to_the_gate(self):
        offenders = self._numpy_imports()
        assert offenders == [
            Path("kernels") / "_np.py"
        ], f"numpy imported outside the kernels gate: {offenders}"

    def test_kernels_package_is_registered(self):
        from repro.analyze.core import KNOWN_PACKAGES
        from repro.analyze.layers import LAYER_DAG

        assert "kernels" in KNOWN_PACKAGES
        assert LAYER_DAG["kernels"] <= {"mem", "sim", "cache", "signatures"}
        assert "kernels" in LAYER_DAG["runtime"]
        assert "kernels" in LAYER_DAG["harness"]
        # kernels must stay out of the hot-path layers it mirrors, so the
        # scalar classes never grow a numpy dependency by import cycle.
        for package in ("cache", "signatures", "sim", "htm"):
            assert "kernels" not in LAYER_DAG[package]
