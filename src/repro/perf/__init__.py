"""Profiling and performance tooling (``python -m repro profile``).

cProfile answers "which Python function burns time"; the manual phase
timers answer the coarser reproduction question "which *simulator phase*
burns it" — memory access, signature probing, coherence bookkeeping,
commits, statistics.  Both feed one machine-readable hot-spot report so
performance work on the simulator starts from measurements, not hunches.

Wall-clock readings here only ever describe the *host*; simulated time is
untouched, and nothing below this layer imports it.
"""

from .phases import PHASES, PhaseTimers
from .profiler import SORT_KEYS, HotSpot, profile_callable

__all__ = [
    "PHASES",
    "PhaseTimers",
    "SORT_KEYS",
    "HotSpot",
    "profile_callable",
]
