"""Tests for the memory-access contexts."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.errors import ReproError
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE
from repro.runtime.txapi import (
    DirectContext,
    RawContext,
    SlowPathContext,
    TxContext,
)
from repro.sim.engine import SimThread


@pytest.fixture
def system():
    return System(MachineConfig.scaled(1 / 64, cores=4), HTMConfig())


def make_thread(tid=0):
    return SimThread(tid, f"t{tid}", lambda t: iter(()))


class TestRawContext:
    def test_read_write_without_timing(self, system):
        raw = RawContext(system.controller)
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        raw.write_word(addr, 77)
        assert raw.read_word(addr) == 77

    def test_block_helpers(self, system):
        raw = RawContext(system.controller)
        addr = system.heap.alloc(4 * LINE_SIZE, MemoryKind.DRAM)
        raw.write_block(addr, 4 * LINE_SIZE, tag=9)
        assert raw.read_block(addr, 4 * LINE_SIZE) == 9
        # One tag word per line:
        assert raw.read_word(addr + LINE_SIZE) == 9


class TestDirectContext:
    def test_charges_time(self, system):
        thread = make_thread()
        direct = DirectContext(system.htm, thread, core_id=0, domain_id=1)
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        direct.write_word(addr, 5)
        assert thread.clock_ns > 0
        assert direct.read_word(addr) == 5

    def test_writes_are_immediately_visible(self, system):
        thread = make_thread()
        direct = DirectContext(system.htm, thread, 0, 1)
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        direct.write_word(addr, 5)
        assert system.controller.load_word(addr) == 5


class TestTxContext:
    def test_transactional_flag(self, system):
        thread = make_thread()
        handle = system.htm.begin(thread, 0, 1, 1)
        ctx = TxContext(system.htm, handle)
        assert ctx.transactional
        assert not DirectContext(system.htm, thread, 0, 1).transactional

    def test_write_block_footprint(self, system):
        thread = make_thread()
        handle = system.htm.begin(thread, 0, 1, 1)
        ctx = TxContext(system.htm, handle)
        addr = system.heap.alloc(8 * LINE_SIZE, MemoryKind.DRAM)
        ctx.write_block(addr, 8 * LINE_SIZE, tag=1)
        assert len(handle.written_lines) == 8


class TestSlowPathContext:
    def test_nvm_writes_buffered_until_finalize(self, system):
        thread = make_thread()
        slow = SlowPathContext(system.htm, thread, 0, 1)
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        slow.write_word(addr, 42)
        # Not yet architecturally visible in NVM-land:
        assert system.controller.nvm.load(addr) == 0
        # But read-your-writes holds:
        assert slow.read_word(addr) == 42
        slow.finalize()
        assert system.controller.load_word(addr) == 42

    def test_finalize_is_durable(self, system):
        thread = make_thread()
        slow = SlowPathContext(system.htm, thread, 0, 1)
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        slow.write_word(addr, 42)
        slow.finalize()
        system.crash()
        system.recover()
        assert system.controller.nvm.load(addr) == 42

    def test_unfinalized_writes_do_not_survive_crash(self, system):
        thread = make_thread()
        slow = SlowPathContext(system.htm, thread, 0, 1)
        addr = system.heap.alloc_words(1, MemoryKind.NVM)
        slow.write_word(addr, 42)
        system.crash()
        system.recover()
        assert system.controller.nvm.load(addr) == 0

    def test_double_finalize_rejected(self, system):
        thread = make_thread()
        slow = SlowPathContext(system.htm, thread, 0, 1)
        slow.finalize()
        with pytest.raises(ReproError):
            slow.finalize()

    def test_dram_writes_direct(self, system):
        thread = make_thread()
        slow = SlowPathContext(system.htm, thread, 0, 1)
        addr = system.heap.alloc_words(1, MemoryKind.DRAM)
        slow.write_word(addr, 7)
        assert system.controller.dram.load(addr) == 7
