"""End-to-end tests of preemptive thread migration (Section IV-E)."""

from __future__ import annotations

import pytest

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind
from repro.params import LINE_SIZE


def run_with_migration(migrate_every_ns, threads=4, seed=7):
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(), seed=seed
    )
    proc = system.process("m")
    counters = [system.heap.alloc_words(1, MemoryKind.NVM) for _ in range(4)]
    payload = [
        system.heap.alloc(32 * LINE_SIZE, MemoryKind.DRAM)
        for _ in range(threads)
    ]

    def make_worker(index):
        def worker(api):
            for i in range(10):
                def work(tx, i=i):
                    # Enough work per tx that a small quantum preempts it.
                    for j in range(32):
                        tx.write_word(payload[index] + j * LINE_SIZE, i)
                        if j % 8 == 7:
                            yield
                    target = counters[index % len(counters)]
                    value = tx.read_word(target)
                    tx.write_word(target, value + 1)

                yield from api.run_transaction(work)

        return worker

    for i in range(threads):
        proc.thread(make_worker(i), migrate_every_ns=migrate_every_ns)
    system.run()
    return system, counters


class TestPreemptiveMigration:
    def test_migrations_happen_and_results_hold(self):
        system, counters = run_with_migration(migrate_every_ns=2000.0)
        assert system.stats.counter("tx.context_switches") > 0
        total = sum(system.controller.load_word(c) for c in counters)
        assert total == 40  # nothing lost across migrations

    def test_pinned_threads_never_migrate(self):
        system, _ = run_with_migration(migrate_every_ns=0.0)
        assert system.stats.counter("tx.context_switches") == 0

    def test_migration_is_deterministic(self):
        a, _ = run_with_migration(migrate_every_ns=2000.0, seed=3)
        b, _ = run_with_migration(migrate_every_ns=2000.0, seed=3)
        assert a.elapsed_ns == b.elapsed_ns
        assert (
            a.stats.counter("tx.context_switches")
            == b.stats.counter("tx.context_switches")
        )

    def test_smaller_quantum_more_switches(self):
        few, _ = run_with_migration(migrate_every_ns=20_000.0)
        many, _ = run_with_migration(migrate_every_ns=1000.0)
        assert (
            many.stats.counter("tx.context_switches")
            > few.stats.counter("tx.context_switches")
        )

    def test_durability_across_migrations(self):
        system, counters = run_with_migration(migrate_every_ns=1500.0)
        system.crash()
        system.recover()
        total = sum(system.controller.nvm.load(c) for c in counters)
        assert total == 40
