"""Linearization checks: committed effects match the commit-time order.

Under eager conflict detection two transactions that write the same line
are never both in flight, so per-key commit times are totally ordered and
the architecturally final value must come from the latest-committing writer.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import HTMConfig, MachineConfig, System
from repro.mem.address import MemoryKind


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    design=st.sampled_from(["uhtm", "ideal", "llc_bounded"]),
)
def test_final_state_matches_commit_order(seed, design):
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(design=design), seed=seed
    )
    proc = system.process("p")
    nkeys = 6
    cells = [system.heap.alloc_words(1, MemoryKind.NVM) for _ in range(nkeys)]
    commit_log = []  # (commit_time, key, value) after each success

    def make_worker(index):
        def worker(api):
            rng = api.rng
            for i in range(8):
                key = rng.randrange(nkeys)
                value = index * 1000 + i + 1

                def work(tx, key=key, value=value):
                    tx.read_word(cells[key])
                    yield
                    tx.write_word(cells[key], value)

                yield from api.run_transaction(work)
                commit_log.append((api.thread.clock_ns, key, value))

        return worker

    for i in range(3):
        proc.thread(make_worker(i))
    system.run()

    last_writer = {}
    for time_ns, key, value in sorted(commit_log):
        last_writer[key] = value
    for key, expected in last_writer.items():
        assert system.controller.load_word(cells[key]) == expected


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_read_snapshots_are_consistent(seed):
    """A transaction reading two cells maintained equal by all writers can
    never observe them unequal (no dirty/fractured reads)."""
    system = System(
        MachineConfig.scaled(1 / 64, cores=4), HTMConfig(design="uhtm"), seed=seed
    )
    proc = system.process("p")
    a = system.heap.alloc_words(1, MemoryKind.DRAM)
    b = system.heap.alloc_words(1, MemoryKind.NVM)
    fractures = []

    def writer(api):
        for i in range(12):
            def work(tx, i=i):
                tx.write_word(a, i)
                yield
                tx.write_word(b, i)

            yield from api.run_transaction(work)

    def reader(api):
        for _ in range(20):
            def work(tx):
                x = tx.read_word(a)
                yield
                y = tx.read_word(b)
                if x != y:
                    fractures.append((x, y))

            yield from api.run_transaction(work)

    proc.thread(writer)
    proc.thread(writer)
    proc.thread(reader)
    system.run()
    assert fractures == []
