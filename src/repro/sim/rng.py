"""Deterministic random-number streams.

Every stochastic decision in the simulator (key distributions, backoff
delays, skip-list levels, hash seeds) draws from a named stream derived from
a single experiment seed.  Two runs with the same seed produce byte-identical
schedules, which the determinism tests rely on.
"""

from __future__ import annotations

import random
from typing import Dict


class RngStreams:
    """A family of independent ``random.Random`` streams under one seed."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The per-stream seed mixes the experiment seed with a stable hash of
        the name, so adding a new stream never perturbs existing ones.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        mixed = self._seed ^ _stable_hash(name)
        stream = random.Random(mixed)
        self._streams[name] = stream
        return stream

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family, e.g. one per simulated thread."""
        return RngStreams(self._seed * 1_000_003 + salt)


def _stable_hash(name: str) -> int:
    """A process-stable 64-bit FNV-1a hash (``hash()`` is salted per run)."""
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
